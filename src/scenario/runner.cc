#include "scenario/runner.h"

#include <algorithm>
#include <charconv>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>

#include <filesystem>

#include "attacks/coresidency.h"
#include "attacks/dos.h"
#include "colo/tournament.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "serve/engine.h"
#include "sim/shard.h"
#include "util/digest.h"
#include "util/rng.h"
#include "util/seeds.h"
#include "util/table.h"
#include "workloads/generators.h"

namespace bolt {
namespace scenario {

namespace {

// Stage/segment/repeat seeds derive from the scenario seed under the
// scenario phase keys of util/seeds.h (shared with serve and fleet so
// the phases stay disjoint across subsystems).
using util::seeds::derivedSeed;
using util::seeds::fanoutSeed;
using util::seeds::kScenarioRepeat;
using util::seeds::kScenarioSegment;
using util::seeds::kScenarioStage;

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

uint64_t
stageSeed(const Scenario& s, uint64_t scenario_seed, size_t index)
{
    const Stage& stage = s.stages[index];
    if (stage.seed != 0)
        return stage.seed;
    return derivedSeed(scenario_seed, kScenarioStage, index);
}

sim::Platform
parsePlatform(const std::string& name)
{
    if (name == "baremetal")
        return sim::Platform::Baremetal;
    if (name == "container")
        return sim::Platform::Container;
    return sim::Platform::VirtualMachine;
}

sim::IsolationConfig
parseIsolation(const std::string& name, sim::Platform platform)
{
    if (name == "pinning")
        return sim::IsolationConfig::withThreadPinning(platform);
    if (name == "net")
        return sim::IsolationConfig::withNetPartitioning(platform);
    if (name == "mem")
        return sim::IsolationConfig::withMemBwPartitioning(platform);
    if (name == "cache")
        return sim::IsolationConfig::withCachePartitioning(platform);
    if (name == "core-full")
        return sim::IsolationConfig::withCoreIsolation(platform);
    if (name == "core-only")
        return sim::IsolationConfig::coreIsolationOnly(platform);
    return sim::IsolationConfig::none(platform);
}

/** The per-segment QPS multiplier of a serve stage's arrival ramp. */
double
rampFactor(const ServeStage& s, int segment)
{
    double n = static_cast<double>(s.segments);
    double center = (static_cast<double>(segment) + 0.5) / n;
    switch (s.shape) {
    case ArrivalShape::Steady:
        return 1.0;
    case ArrivalShape::FlashCrowd:
        // Triangle: base at the edges, peak-factor at the middle.
        return 1.0 + (s.peakFactor - 1.0) *
                         (1.0 - 2.0 * std::abs(center - 0.5));
    case ArrivalShape::Diurnal:
        // Cosine day: trough at the edges, base QPS at the middle.
        return s.floorFactor +
               (1.0 - s.floorFactor) *
                   (0.5 - 0.5 * std::cos(2.0 * 3.14159265358979323846 *
                                         center));
    }
    return 1.0;
}

struct StageOutcome
{
    uint64_t digest = 0;
    double simSeconds = 0.0;
};

StageOutcome
runExperimentStage(const Stage& stage, uint64_t seed, std::ostream& os,
                   const std::string& indent)
{
    const ExperimentStage& e = stage.experiment;
    core::ExperimentConfig cfg;
    cfg.servers = static_cast<size_t>(e.servers);
    cfg.victims = static_cast<size_t>(e.victims);
    cfg.policy = e.policy == "quasar"
                     ? core::ExperimentConfig::Policy::Quasar
                     : core::ExperimentConfig::Policy::LeastLoaded;
    cfg.isolation =
        parseIsolation(e.isolation, parsePlatform(e.platform));
    cfg.victimObfuscation = e.obfuscation;
    if (e.hasFaults)
        cfg.faults = e.faults;
    cfg.seed = seed;

    auto result = core::ControlledExperiment(cfg).run();

    StageOutcome out;
    out.digest = result.digest();
    os << indent << "    accuracy="
       << util::AsciiTable::percent(result.aggregateAccuracy(), 1)
       << " characteristics="
       << util::AsciiTable::percent(result.characteristicsAccuracy(), 1)
       << " scheduled=" << result.outcomes.size()
       << " departed=" << result.departedCount()
       << " digest=" << hex64(out.digest) << "\n";
    return out;
}

StageOutcome
runServeStage(const Stage& stage, uint64_t seed, std::ostream& os,
              const std::string& indent)
{
    const ServeStage& s = stage.serve;

    // Training corpus and recommender, derived from the stage seed the
    // same way bolt_cli serve-bench builds them.
    util::Rng rng(seed);
    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);

    serve::ServeConfig cfg;
    cfg.workers = static_cast<size_t>(s.workers);
    cfg.queueCapacity = static_cast<size_t>(s.queueCap);
    cfg.maxBatch = static_cast<size_t>(s.maxBatch);
    cfg.batchSetupMs = s.batchSetupMs;
    cfg.batchWaitMs = s.batchWaitMs;
    cfg.admitSloCheck = s.admitCheck;
    cfg.load.closedLoop = s.loop == LoopKind::Closed;
    cfg.load.clients = static_cast<size_t>(s.clients);
    cfg.load.thinkMs = s.thinkMs;
    cfg.load.sloMs = s.sloMs;
    cfg.load.decomposeFraction = s.decomposeFrac;

    int segments = s.shape == ArrivalShape::Steady ? 1 : s.segments;
    uint64_t offered = 0, completed = 0, shed = 0, misses = 0,
             rejected = 0;
    double worst_p99 = 0.0;
    StageOutcome out;
    util::Fnv1a d;
    d.u64(static_cast<uint64_t>(segments));
    for (int i = 0; i < segments; ++i) {
        serve::ServeConfig seg = cfg;
        int base = s.requests / segments;
        seg.load.requests = static_cast<size_t>(
            base + (i < s.requests % segments ? 1 : 0));
        if (seg.load.requests == 0)
            continue;
        seg.load.offeredQps = s.qps * rampFactor(s, i);
        seg.load.seed =
            fanoutSeed(seed, kScenarioSegment,
                       static_cast<uint64_t>(segments),
                       static_cast<uint64_t>(i));

        serve::ServeEngine engine(recommender, seg);
        auto result = engine.run();
        const serve::ServeStats& st = result.stats;
        d.u64(result.digest());
        offered += st.offered;
        completed += st.completed;
        shed += st.shedDeadline;
        misses += st.sloMisses;
        rejected += st.rejectedQueueFull + st.rejectedSloInfeasible;
        worst_p99 =
            std::max(worst_p99, st.latencyMs.percentile(99));
        out.simSeconds += st.makespanMs / 1000.0;
        obs::MetricsRegistry::global().add(
            obs::MetricId::kScenarioServeSegments);
    }
    out.digest = d.h;
    os << indent << "    offered=" << offered
       << " completed=" << completed << " rejected=" << rejected
       << " shed=" << shed << " slo-miss=" << misses
       << " p99=" << util::AsciiTable::num(worst_p99, 2) << "ms"
       << " digest=" << hex64(out.digest) << "\n";
    return out;
}

StageOutcome
runAttackStage(const Stage& stage, uint64_t seed, std::ostream& os,
               const std::string& indent)
{
    const AttackStage& a = stage.attack;
    StageOutcome out;
    util::Fnv1a d;
    if (a.kind == AttackKind::Dos) {
        attacks::DosTimelineConfig cfg;
        cfg.durationSec = a.durationSec;
        cfg.topResources = a.topResources;
        cfg.margin = a.margin;
        cfg.seed = seed;
        attacks::DosTimelineExperiment experiment(cfg);
        auto bolt_run = experiment.run(true);
        auto naive_run = experiment.run(false);

        double nominal = bolt_run[5].p99Ms;
        double bolt_peak = 0.0, naive_peak = 0.0;
        bool bolt_migrated = false, naive_migrated = false;
        for (const auto& run : {&bolt_run, &naive_run}) {
            d.u64(run->size());
            for (const auto& sample : *run) {
                d.f64(sample.p99Ms);
                d.f64(sample.cpuUtil);
                d.u8(sample.migrating ? 1 : 0);
                d.u8(sample.migrated ? 1 : 0);
            }
        }
        for (const auto& sample : bolt_run) {
            bolt_peak = std::max(bolt_peak, sample.p99Ms / nominal);
            bolt_migrated = bolt_migrated || sample.migrated;
        }
        for (const auto& sample : naive_run) {
            naive_peak = std::max(naive_peak, sample.p99Ms / nominal);
            naive_migrated = naive_migrated || sample.migrated;
        }
        out.simSeconds =
            static_cast<double>(bolt_run.size() + naive_run.size());
        out.digest = d.h;
        os << indent << "    bolt-peak="
           << util::AsciiTable::num(bolt_peak, 1) << "x"
           << " naive-peak=" << util::AsciiTable::num(naive_peak, 1)
           << "x migrated-bolt=" << (bolt_migrated ? "yes" : "no")
           << " migrated-naive=" << (naive_migrated ? "yes" : "no")
           << " digest=" << hex64(out.digest) << "\n";
    } else {
        attacks::CoResidencyConfig cfg;
        cfg.probeVms = static_cast<size_t>(a.probes);
        cfg.maxWaves = static_cast<size_t>(a.waves);
        cfg.victimVms = static_cast<size_t>(a.victimVms);
        cfg.seed = seed;
        auto result = attacks::CoResidencyAttack(cfg).run();

        d.f64(result.placementProbability);
        d.u8(result.probeCoResident ? 1 : 0);
        d.u64(result.candidateHosts);
        d.f64(result.baselineLatencyMs);
        d.f64(result.attackLatencyMs);
        d.u8(result.victimPinpointed ? 1 : 0);
        d.f64(result.detectionTimeSec);
        d.u64(result.adversaryVmsUsed);
        d.u64(result.wavesUsed);
        out.simSeconds = result.detectionTimeSec;
        out.digest = d.h;
        os << indent << "    pinpointed="
           << (result.victimPinpointed ? "yes" : "no")
           << " waves=" << result.wavesUsed
           << " vms=" << result.adversaryVmsUsed << " time="
           << util::AsciiTable::num(result.detectionTimeSec, 1) << "s"
           << " digest=" << hex64(out.digest) << "\n";
    }
    return out;
}

StageOutcome
runFleetStage(const Stage& stage, uint64_t seed, std::ostream& os,
              const std::string& indent)
{
    const FleetStage& f = stage.fleet;
    sim::FleetConfig cfg;
    cfg.hosts = static_cast<size_t>(f.hosts);
    cfg.tenants = static_cast<size_t>(f.tenants);
    cfg.shards = static_cast<size_t>(f.shards);
    cfg.epochs = f.epochs;
    cfg.arrivalsPerHostEpoch = f.arrivals;
    cfg.departureProb = f.departures;
    cfg.migrationProb = f.migrations;
    cfg.hostFaultProb = f.hostFaults;
    cfg.seed = seed;

    sim::FleetCluster fleet(cfg);
    sim::FleetResult result = fleet.run();

    StageOutcome out;
    out.digest = result.digest;
    out.simSeconds = result.simSeconds;
    double util =
        result.epochs.empty() ? 0.0 : result.epochs.back().meanUtil;
    os << indent << "    booted=" << result.vmsBooted
       << " alive=" << result.vmsAlive
       << " arrivals=" << result.arrivals
       << " departures=" << result.departures
       << " migrations=" << result.migrations
       << " cross-shard=" << result.crossShardMigrations
       << " faults=" << result.hostFaults
       << " util=" << util::AsciiTable::num(util, 1) << "%"
       << " digest=" << hex64(out.digest) << "\n";
    return out;
}

StageOutcome
runArmsraceStage(const Stage& stage, uint64_t seed, std::ostream& os,
                 const std::string& indent)
{
    const ArmsraceStage& a = stage.armsrace;
    colo::TournamentConfig cfg;
    cfg.servers = static_cast<size_t>(a.servers);
    cfg.utilLevels = {a.utilization};
    cfg.attackers = {a.attacker == "replication"
                         ? colo::AttackerKind::Replication
                     : a.attacker == "affinity"
                         ? colo::AttackerKind::Affinity
                         : colo::AttackerKind::Churn};
    cfg.policies = {a.allocator == "quasar" ? colo::PolicyKind::Quasar
                    : a.allocator == "random" ? colo::PolicyKind::Random
                    : a.allocator == "mab"    ? colo::PolicyKind::Mab
                    : a.allocator == "secure" ? colo::PolicyKind::Secure
                                              : colo::PolicyKind::LeastLoaded};
    cfg.reps = a.reps;
    cfg.probesPerWave = a.probes;
    cfg.waves = a.waves;
    cfg.seed = seed;

    colo::TournamentResult result = colo::runTournament(cfg);
    const colo::CellResult& cell = result.cells.front();

    StageOutcome out;
    out.digest = result.digest;
    out.simSeconds = cell.simSeconds;
    os << indent << "    success=" << cell.successes << "/" << cell.reps
       << " waves=" << util::AsciiTable::num(cell.meanWaves, 1)
       << " ttc=" << util::AsciiTable::num(cell.meanTimeToCoResSec, 1)
       << "s launches=" << cell.launches
       << " migrations=" << cell.migrations << " util="
       << util::AsciiTable::num(cell.meanUtilPct, 1) << "%"
       << " digest=" << hex64(out.digest) << "\n";
    return out;
}

RunResult runWithSeed(const Scenario& s, uint64_t seed,
                      std::ostream& os, int depth);

StageOutcome
runIncludeStage(const Stage& stage, uint64_t scenario_seed,
                std::ostream& os, int depth, RunResult* total)
{
    // An include runs its sub-scenario under the sub-scenario's own
    // seed (explicit `seed:` overrides; repeats derive per-repetition
    // seeds), so an unchanged `- stage: include` reproduces the
    // sub-file's standalone digests exactly.
    uint64_t base = stage.seed != 0 ? stage.seed : stage.sub->seed;
    (void)scenario_seed;
    StageOutcome out;
    util::Fnv1a d;
    d.u64(static_cast<uint64_t>(stage.repeat));
    for (int rep = 0; rep < stage.repeat; ++rep) {
        uint64_t rep_seed =
            fanoutSeed(base, kScenarioRepeat,
                       static_cast<uint64_t>(stage.repeat),
                       static_cast<uint64_t>(rep));
        if (stage.repeat > 1) {
            std::string indent((depth + 1) * 2, ' ');
            os << indent << "  repeat " << (rep + 1) << "/"
               << stage.repeat << ":\n";
        }
        RunResult sub = runWithSeed(*stage.sub, rep_seed, os, depth + 1);
        d.u64(sub.digest);
        out.simSeconds += sub.simSeconds;
        total->stagesRun += sub.stagesRun;
        obs::MetricsRegistry::global().add(
            obs::MetricId::kScenarioIncludesRun);
    }
    out.digest = d.h;
    return out;
}

RunResult
runWithSeed(const Scenario& s, uint64_t seed, std::ostream& os,
            int depth)
{
    std::string indent(depth * 2, ' ');
    os << indent << "scenario: " << s.name << " (seed " << seed << ", "
       << s.stages.size() << (s.stages.size() == 1 ? " stage" : " stages")
       << ")\n";

    RunResult total;
    util::Fnv1a d;
    d.u64(seed);
    d.u64(s.stages.size());
    auto& metrics = obs::MetricsRegistry::global();
    for (size_t i = 0; i < s.stages.size(); ++i) {
        const Stage& stage = s.stages[i];
        uint64_t sseed = stageSeed(s, seed, i);

        os << indent << "  [" << i << "] "
           << stageKindName(stage.kind) << " " << stage.name;
        StageOutcome outcome;
        switch (stage.kind) {
        case StageKind::Experiment: {
            const ExperimentStage& e = stage.experiment;
            os << ": servers=" << e.servers << " victims=" << e.victims
               << " policy=" << e.policy << " platform=" << e.platform
               << " isolation=" << e.isolation;
            if (e.obfuscation > 0.0)
                os << " obfuscation="
                   << util::AsciiTable::num(e.obfuscation, 2);
            if (e.hasFaults)
                os << " faults=on";
            os << " seed=" << sseed << "\n";
            outcome = runExperimentStage(stage, sseed, os, indent);
            break;
        }
        case StageKind::Serve: {
            const ServeStage& sv = stage.serve;
            os << ": " << loopKindName(sv.loop) << " "
               << arrivalShapeName(sv.shape);
            if (sv.shape != ArrivalShape::Steady)
                os << " segments=" << sv.segments;
            os << " requests=" << sv.requests << " qps="
               << util::AsciiTable::num(sv.qps, 0) << " seed=" << sseed
               << "\n";
            outcome = runServeStage(stage, sseed, os, indent);
            break;
        }
        case StageKind::Attack: {
            const AttackStage& a = stage.attack;
            os << ": " << attackKindName(a.kind);
            if (a.kind == AttackKind::Dos)
                os << " margin=" << util::AsciiTable::num(a.margin, 2)
                   << " top=" << a.topResources << " duration="
                   << util::AsciiTable::num(a.durationSec, 0) << "s";
            else
                os << " probes=" << a.probes << " waves=" << a.waves
                   << " victim-vms=" << a.victimVms;
            os << " seed=" << sseed << "\n";
            outcome = runAttackStage(stage, sseed, os, indent);
            break;
        }
        case StageKind::Fleet: {
            const FleetStage& f = stage.fleet;
            os << ": hosts=" << f.hosts << " tenants=" << f.tenants
               << " shards=" << f.shards << " epochs=" << f.epochs
               << " seed=" << sseed << "\n";
            outcome = runFleetStage(stage, sseed, os, indent);
            break;
        }
        case StageKind::Armsrace: {
            const ArmsraceStage& a = stage.armsrace;
            os << ": allocator=" << a.allocator << " attacker="
               << a.attacker << " servers=" << a.servers << " utilization="
               << util::AsciiTable::num(a.utilization, 0)
               << " seed=" << sseed << "\n";
            outcome = runArmsraceStage(stage, sseed, os, indent);
            break;
        }
        case StageKind::Include:
            os << ": " << stage.includePath
               << " repeat=" << stage.repeat << "\n";
            outcome = runIncludeStage(stage, seed, os, depth, &total);
            break;
        }
        d.u64(i);
        d.u8(static_cast<uint8_t>(stage.kind));
        d.u64(outcome.digest);
        total.simSeconds += outcome.simSeconds;
        ++total.stagesRun;
        metrics.add(obs::MetricId::kScenarioStagesRun);
        metrics.observe(obs::MetricId::kScenarioStageSimSec,
                        outcome.simSeconds);
    }
    total.digest = d.h;
    os << indent << "  run digest: " << hex64(total.digest) << "\n";
    return total;
}

/** Shortest round-trip decimal form of a double. */
std::string
fmtNum(double v)
{
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;
    return std::string(buf, ptr);
}

/** Resolve one compiled SloRuleSpec into the monitor's rule form. */
obs::SloRule
toObsRule(const SloRuleSpec& spec)
{
    obs::SloRule r;
    r.name = spec.rule;
    r.kind = spec.kind == "burn-rate" ? obs::RuleKind::BurnRate
             : spec.kind == "absence" ? obs::RuleKind::Absence
                                      : obs::RuleKind::Threshold;
    obs::seriesByName(spec.series, &r.series);
    r.label = spec.label;
    r.agg = spec.agg == "count" ? obs::RuleAgg::Count
            : spec.agg == "sum" ? obs::RuleAgg::Sum
            : spec.agg == "p50" ? obs::RuleAgg::P50
            : spec.agg == "p95" ? obs::RuleAgg::P95
            : spec.agg == "p99" ? obs::RuleAgg::P99
                                : obs::RuleAgg::Mean;
    r.op = spec.op == "below" ? obs::RuleOp::Below : obs::RuleOp::Above;
    r.value = spec.value;
    r.sustain = static_cast<uint32_t>(spec.sustainWindows);
    if (!spec.totalSeries.empty())
        obs::seriesByName(spec.totalSeries, &r.totalSeries);
    r.totalLabel = spec.totalLabel;
    r.budget = spec.budget;
    r.shortWindows = static_cast<uint32_t>(spec.shortWindows);
    r.longWindows = static_cast<uint32_t>(spec.longWindows);
    r.windows = static_cast<uint32_t>(spec.windows);
    return r;
}

uint64_t
counterValue(const obs::Snapshot& snap, std::string_view name)
{
    for (const auto& c : snap.counters)
        if (name == obs::metricInfo(c.id).name)
            return c.value;
    return 0;
}

} // namespace

RunResult
runScenario(const Scenario& s, std::ostream& os)
{
    const bool has_rules = !s.sloRules.empty();
    const bool has_expects = !s.expects.empty();
    auto& metrics = obs::MetricsRegistry::global();
    auto& telemetry = obs::TimeSeriesRecorder::global();
    auto& monitor = obs::SloMonitor::global();

    // Expectations and rules auto-enable the observability they need
    // and restore the ambient state afterwards; metric expects
    // evaluate run deltas so back-to-back in-process runs (tests, the
    // scenario library gate) don't bleed into each other.
    const bool metrics_were_enabled = metrics.enabled();
    const bool telemetry_was_enabled = telemetry.enabled();
    obs::Snapshot before;
    if (has_expects) {
        metrics.setEnabled(true);
        before = metrics.snapshot();
    }
    if (has_rules) {
        // The alert timeline is golden-gated, so it must not depend on
        // --telemetry-window: force the scenario's own window width
        // and start from an empty recorder.
        obs::TelemetryConfig cfg = telemetry.config();
        cfg.windowSec = s.sloWindowSec;
        telemetry.configure(cfg);
        telemetry.setEnabled(true);
        std::vector<obs::SloRule> rules;
        rules.reserve(s.sloRules.size());
        for (const SloRuleSpec& spec : s.sloRules)
            rules.push_back(toObsRule(spec));
        monitor.setRules(std::move(rules));
    }

    RunResult total = runWithSeed(s, s.seed, os, 0);

    if (has_rules) {
        os << "  alerts:";
        if (monitor.events().empty()) {
            os << " none\n";
        } else {
            os << "\n";
            for (const obs::AlertEvent& ev : monitor.events()) {
                os << "    " << (ev.firing ? "fired" : "resolved")
                   << " " << ev.rule << " t=" << fmtNum(ev.t)
                   << "s value=" << util::AsciiTable::num(ev.value, 2);
                if (ev.epoch > 1)
                    os << " epoch=" << ev.epoch;
                os << "\n";
            }
        }
    }
    if (has_expects) {
        obs::Snapshot after = metrics.snapshot();
        std::string file =
            std::filesystem::path(s.sourcePath.empty() ? "<scenario>"
                                                       : s.sourcePath)
                .filename()
                .string();
        int passed = 0;
        for (const ExpectSpec& e : s.expects) {
            ++total.expectsTotal;
            std::string failure;
            if (!e.metric.empty()) {
                uint64_t delta = counterValue(after, e.metric) -
                                 counterValue(before, e.metric);
                if (e.hasMin && delta < e.min)
                    failure = "metric " + e.metric + " = " +
                              std::to_string(delta) + " below min " +
                              std::to_string(e.min);
                else if (e.hasMax && delta > e.max)
                    failure = "metric " + e.metric + " = " +
                              std::to_string(delta) + " above max " +
                              std::to_string(e.max);
            } else if (e.slo == "no-alerts-firing") {
                if (monitor.firingCount() != 0)
                    failure = std::to_string(monitor.firingCount()) +
                              " alert(s) still firing at end of run";
            } else if (e.slo == "fired") {
                if (!monitor.everFired(e.rule))
                    failure = "slo rule '" + e.rule + "' never fired";
            } else { // not-fired
                if (monitor.everFired(e.rule))
                    failure = "slo rule '" + e.rule + "' fired";
            }
            if (failure.empty())
                ++passed;
            else
                total.expectFailures.push_back(
                    file + ":" + std::to_string(e.line) +
                    ": expectation failed: " + failure);
        }
        os << "  expect: " << passed << "/" << total.expectsTotal
           << (total.expectFailures.empty() ? " ok" : " FAILED")
           << "\n";
    }

    // Restore the ambient observability state. Recorded telemetry and
    // alert events stay in place so --telemetry-out's end-of-run write
    // still sees them; without a configured output the monitor is
    // cleared so later in-process runs start inert.
    if (has_expects)
        metrics.setEnabled(metrics_were_enabled);
    if (has_rules) {
        telemetry.setEnabled(telemetry_was_enabled);
        if (obs::telemetryOutPath().empty())
            monitor.clear();
    }
    return total;
}

} // namespace scenario
} // namespace bolt

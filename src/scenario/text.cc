#include "scenario/text.h"

#include <cctype>
#include <sstream>

namespace bolt {
namespace scenario {

namespace {

/** One content-bearing source line after comment/blank stripping. */
struct Line
{
    int number = 0; ///< 1-based.
    int indent = 0; ///< Leading spaces.
    std::string text; ///< Content after the indent, right-trimmed.
};

std::string
errorAt(std::string_view filename, int line, const std::string& message)
{
    std::ostringstream os;
    os << filename << ":" << line << ": " << message;
    return os.str();
}

/**
 * Strip a comment: '#' at the start of the content or preceded by a
 * space opens one. '#' embedded in a value token is kept.
 */
void
stripComment(std::string* s)
{
    for (size_t i = 0; i < s->size(); ++i) {
        if ((*s)[i] == '#' && (i == 0 || (*s)[i - 1] == ' ')) {
            s->resize(i);
            return;
        }
    }
}

void
rtrim(std::string* s)
{
    while (!s->empty() && std::isspace(static_cast<unsigned char>(s->back())))
        s->pop_back();
}

bool
validKey(std::string_view key)
{
    if (key.empty())
        return false;
    for (char c : key) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_')
            return false;
    }
    return true;
}

/**
 * Split lines, drop blanks/comments, measure indentation. Tabs in the
 * indentation are rejected (invisible nesting bugs are not worth it).
 */
bool
scanLines(std::string_view source, std::string_view filename,
          std::vector<Line>* out, std::string* err)
{
    int number = 0;
    size_t pos = 0;
    while (pos <= source.size()) {
        size_t eol = source.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = source.size();
        ++number;
        std::string raw(source.substr(pos, eol - pos));
        pos = eol + 1;

        size_t i = 0;
        while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) {
            if (raw[i] == '\t') {
                *err = errorAt(filename, number,
                               "tab characters are not allowed in "
                               "indentation (use spaces)");
                return false;
            }
            ++i;
        }
        std::string content = raw.substr(i);
        stripComment(&content);
        rtrim(&content);
        if (content.empty())
            continue;
        out->push_back({number, static_cast<int>(i), content});
        if (eol == source.size())
            break;
    }
    return true;
}

/**
 * Recursive block parser over the scanned lines. `parseEntry` consumes
 * one `key: ...` line (plus any nested block) into an (key, node) pair;
 * `parseBlock` consumes every line at exactly `indent` into a Map or
 * List node (decided by the first line).
 */
class Parser
{
  public:
    Parser(const std::vector<Line>& lines, std::string_view filename,
           std::string* err)
        : lines_(lines), filename_(filename), err_(err)
    {
    }

    bool
    parseTop(TextNode* root)
    {
        root->kind = TextNode::Kind::Map;
        root->line = lines_.empty() ? 1 : lines_.front().number;
        if (!lines_.empty() && lines_.front().indent != 0) {
            *err_ = errorAt(filename_, lines_.front().number,
                            "top-level entries must not be indented");
            return false;
        }
        if (!lines_.empty() && lines_.front().text[0] == '-') {
            *err_ = errorAt(filename_, lines_.front().number,
                            "top level must be 'key: value' entries, "
                            "not a list");
            return false;
        }
        return parseMap(0, root);
    }

  private:
    bool
    parseMap(int indent, TextNode* node)
    {
        node->kind = TextNode::Kind::Map;
        while (next_ < lines_.size()) {
            const Line& line = lines_[next_];
            if (line.indent < indent)
                break;
            if (line.indent > indent) {
                *err_ = errorAt(filename_, line.number,
                                "unexpected indentation");
                return false;
            }
            if (line.text[0] == '-' &&
                (line.text.size() == 1 || line.text[1] == ' ')) {
                *err_ = errorAt(filename_, line.number,
                                "list item not allowed inside a "
                                "key/value block");
                return false;
            }
            std::pair<std::string, TextNode> entry;
            if (!parseEntry(line.indent, &entry))
                return false;
            for (const auto& [key, value] : node->entries) {
                (void)value;
                if (key == entry.first) {
                    *err_ = errorAt(filename_, entry.second.line,
                                    "duplicate key '" + entry.first +
                                        "'");
                    return false;
                }
            }
            node->entries.push_back(std::move(entry));
        }
        return true;
    }

    bool
    parseList(int indent, TextNode* node)
    {
        node->kind = TextNode::Kind::List;
        while (next_ < lines_.size()) {
            const Line& line = lines_[next_];
            if (line.indent < indent)
                break;
            if (line.indent > indent) {
                *err_ = errorAt(filename_, line.number,
                                "unexpected indentation");
                return false;
            }
            if (line.text[0] != '-' ||
                (line.text.size() > 1 && line.text[1] != ' ')) {
                *err_ = errorAt(filename_, line.number,
                                "expected a '- ' list item");
                return false;
            }
            std::string rest =
                line.text.size() > 1 ? line.text.substr(2) : "";
            size_t skip = rest.find_first_not_of(' ');
            rest = skip == std::string::npos ? "" : rest.substr(skip);
            if (rest.empty()) {
                *err_ = errorAt(filename_, line.number,
                                "empty list item");
                return false;
            }

            TextNode item;
            item.line = line.number;
            if (rest.find(':') == std::string::npos) {
                item.kind = TextNode::Kind::Scalar;
                item.scalar = rest;
                ++next_;
            } else {
                // Item map: the inline `key: value` plus continuation
                // entries aligned two columns past the dash.
                item.kind = TextNode::Kind::Map;
                int item_indent = indent + 2;
                // Re-enter parseEntry on a synthetic line: temporarily
                // rewrite the current line as the item's first entry.
                Line first = line;
                first.indent = item_indent;
                first.text = rest;
                rewritten_ = first;
                useRewritten_ = true;
                std::pair<std::string, TextNode> entry;
                if (!parseEntry(item_indent, &entry))
                    return false;
                item.entries.push_back(std::move(entry));
                // Continuation lines of this item.
                while (next_ < lines_.size() &&
                       lines_[next_].indent == item_indent &&
                       lines_[next_].text[0] != '-') {
                    std::pair<std::string, TextNode> cont;
                    if (!parseEntry(item_indent, &cont))
                        return false;
                    for (const auto& [key, value] : item.entries) {
                        (void)value;
                        if (key == cont.first) {
                            *err_ = errorAt(filename_, cont.second.line,
                                            "duplicate key '" +
                                                cont.first + "'");
                            return false;
                        }
                    }
                    item.entries.push_back(std::move(cont));
                }
                if (next_ < lines_.size() &&
                    lines_[next_].indent > item_indent) {
                    *err_ = errorAt(filename_, lines_[next_].number,
                                    "unexpected indentation");
                    return false;
                }
            }
            node->items.push_back(std::move(item));
        }
        return true;
    }

    /** Consume one `key: ...` line at `indent` (plus a nested block). */
    bool
    parseEntry(int indent, std::pair<std::string, TextNode>* out)
    {
        Line line = useRewritten_ ? rewritten_ : lines_[next_];
        useRewritten_ = false;
        ++next_;

        size_t colon = line.text.find(':');
        if (colon == std::string::npos) {
            *err_ = errorAt(filename_, line.number,
                            "expected 'key: value' (missing ':')");
            return false;
        }
        std::string key = line.text.substr(0, colon);
        rtrim(&key);
        if (!validKey(key)) {
            *err_ = errorAt(filename_, line.number,
                            "invalid key '" + key +
                                "' (letters, digits, '-', '_' only)");
            return false;
        }
        std::string value = line.text.substr(colon + 1);
        size_t skip = value.find_first_not_of(' ');
        value = skip == std::string::npos ? "" : value.substr(skip);

        TextNode node;
        node.line = line.number;
        if (!value.empty()) {
            node.kind = TextNode::Kind::Scalar;
            node.scalar = value;
        } else {
            // Nested block: children must be indented strictly deeper.
            if (next_ >= lines_.size() ||
                lines_[next_].indent <= indent) {
                *err_ = errorAt(filename_, line.number,
                                "key '" + key +
                                    "' has neither a value nor an "
                                    "indented block");
                return false;
            }
            int child_indent = lines_[next_].indent;
            if (lines_[next_].text[0] == '-' &&
                (lines_[next_].text.size() == 1 ||
                 lines_[next_].text[1] == ' ')) {
                if (!parseList(child_indent, &node))
                    return false;
            } else {
                if (!parseMap(child_indent, &node))
                    return false;
            }
        }
        *out = {std::move(key), std::move(node)};
        return true;
    }

    const std::vector<Line>& lines_;
    std::string_view filename_;
    std::string* err_;
    size_t next_ = 0;
    Line rewritten_;
    bool useRewritten_ = false;
};

} // namespace

const TextNode*
TextNode::find(std::string_view key) const
{
    for (const auto& [k, v] : entries) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
parseText(std::string_view source, std::string_view filename,
          TextNode* root, std::string* err)
{
    std::vector<Line> lines;
    if (!scanLines(source, filename, &lines, err))
        return false;
    if (lines.empty()) {
        *err = errorAt(filename, 1, "empty scenario file");
        return false;
    }
    Parser parser(lines, filename, err);
    return parser.parseTop(root);
}

} // namespace scenario
} // namespace bolt

#ifndef BOLT_SCENARIO_TEXT_H
#define BOLT_SCENARIO_TEXT_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bolt {
namespace scenario {

/**
 * Parse tree of the scenario text format — a small, strict, std-only
 * YAML-ish subset (genny-style declarative workloads without a YAML
 * dependency):
 *
 *   key: value          scalar entry (value = rest of line, trimmed)
 *   key:                nested block; children indented further
 *   - key: value        list item opening an item map; continuation
 *                       entries align two columns past the dash
 *   - value             scalar list item
 *   # comment           full-line, or trailing after whitespace
 *
 * Strictness contract (every violation is a line-numbered error):
 * tabs in indentation, bare text without a key, duplicate keys within
 * one map, list items inside a map block, `key:` with neither a value
 * nor an indented block, and inconsistent indentation are all rejected.
 * The compiler on top (scenario.h) adds schema validation; this layer
 * only shapes lines into a tree.
 */
struct TextNode
{
    enum class Kind { Scalar, Map, List };

    Kind kind = Kind::Scalar;
    int line = 0;       ///< 1-based source line introducing this node.
    std::string scalar; ///< Kind::Scalar payload.
    /** Kind::Map entries in source order (duplicates are parse errors). */
    std::vector<std::pair<std::string, TextNode>> entries;
    std::vector<TextNode> items; ///< Kind::List items in source order.

    /** Map lookup; nullptr when absent or this is not a map. */
    const TextNode* find(std::string_view key) const;
};

/**
 * Parse `source` into *root (always a Map at the top level).
 *
 * @param filename Used only to prefix diagnostics ("file:line: ...").
 * @return false with *err = "<filename>:<line>: <message>" on the first
 *         violation; the CLI surfaces this verbatim and exits 2.
 */
bool parseText(std::string_view source, std::string_view filename,
               TextNode* root, std::string* err);

} // namespace scenario
} // namespace bolt

#endif // BOLT_SCENARIO_TEXT_H

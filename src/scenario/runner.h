#ifndef BOLT_SCENARIO_RUNNER_H
#define BOLT_SCENARIO_RUNNER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace bolt {
namespace scenario {

/** Aggregate outcome of one scenario run. */
struct RunResult
{
    /**
     * FNV-1a fold of (effective seed, stage count, and per stage: index,
     * kind, stage digest) where each stage digest is the underlying
     * layer's Sim-class result digest (ExperimentResult::digest(),
     * folded ServeResult::digest()s per ramp segment, the full attack
     * timeline / result fields, or the sub-scenario's run digests for
     * include stages). Bit-identical at any --threads — the value the
     * scenario goldens gate on.
     */
    uint64_t digest = 0;
    /** Stages executed, include-stage sub-scenarios included. */
    int stagesRun = 0;
    /** Accumulated virtual seconds across stages (Sim-class). */
    double simSeconds = 0.0;
    /** `expect:` items evaluated (top-level scenario only; include
     *  stages run sub-scenarios without their expect/slo blocks). */
    int expectsTotal = 0;
    /** One "<file>:<line>: expectation failed: ..." per failed item;
     *  non-empty makes `bolt_cli run` exit 3. */
    std::vector<std::string> expectFailures;

    bool ok() const
    {
        return expectFailures.empty();
    }
};

/**
 * Execute a compiled scenario: each stage drives the matching layer
 * (core::ControlledExperiment, serve::ServeEngine, attacks::*) with a
 * per-stage counter-based seed, printing one two-line Sim-class summary
 * per stage to `os` (the scenario goldens capture exactly this output)
 * and recording scenario.* metrics.
 *
 * Stage seeds: an explicit `seed:` wins; otherwise
 * `Rng::stream(scenario seed, {stage phase, index})`. Include stages
 * run their sub-scenario under its own seed (so an unchanged include
 * reproduces the sub-scenario's standalone digests) unless the stage
 * sets `seed:`; `repeat: N` derives a distinct seed per repetition.
 */
RunResult runScenario(const Scenario& s, std::ostream& os);

} // namespace scenario
} // namespace bolt

#endif // BOLT_SCENARIO_RUNNER_H

#include "scenario/scenario.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "scenario/text.h"
#include "util/digest.h"

namespace bolt {
namespace scenario {

namespace {

constexpr int kMaxStages = 64;
constexpr int kMaxIncludeDepth = 8;

std::string
errorAt(std::string_view filename, int line, const std::string& message)
{
    std::ostringstream os;
    os << filename << ":" << line << ": " << message;
    return os.str();
}

/** Shortest round-trip decimal form of a double ("2", "0.25", ...). */
std::string
fmtDouble(double v)
{
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;
    return std::string(buf, ptr);
}

bool
parseFullInt(std::string_view s, long long* out)
{
    long long v = 0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size())
        return false;
    *out = v;
    return true;
}

bool
parseFullUInt(std::string_view s, uint64_t* out)
{
    uint64_t v = 0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size())
        return false;
    *out = v;
    return true;
}

bool
parseFullDouble(std::string_view s, double* out)
{
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size() ||
        !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

/**
 * Typed, strict reader over one parsed map: getters validate kind,
 * full-token numeric syntax and inclusive ranges; finish() rejects any
 * key no getter asked for, listing the valid set — the same
 * fail-loudly contract as util::CliArgs, with line numbers.
 *
 * The first error wins; later getters become no-ops, so compile code
 * reads every key unconditionally and checks failed() once.
 */
class MapReader
{
  public:
    MapReader(const TextNode& node, std::string_view filename,
              std::string context)
        : node_(node), filename_(filename), context_(std::move(context))
    {
    }

    bool failed() const { return !error_.empty(); }
    const std::string& error() const { return error_; }

    void
    getString(const char* key, std::string* out, bool required = false)
    {
        const TextNode* v = claim(key);
        if (failed())
            return;
        if (!v) {
            if (required)
                fail(node_.line, std::string("missing required key '") +
                                     key + "' in " + context_);
            return;
        }
        if (!expectScalar(key, v))
            return;
        *out = v->scalar;
    }

    void
    getUInt(const char* key, uint64_t* out)
    {
        const TextNode* v = claim(key);
        if (failed() || !v || !expectScalar(key, v))
            return;
        uint64_t parsed = 0;
        if (!parseFullUInt(v->scalar, &parsed)) {
            fail(v->line, "value '" + v->scalar + "' for '" + key +
                              "' is not an unsigned integer");
            return;
        }
        *out = parsed;
    }

    void
    getInt(const char* key, long long lo, long long hi, int* out)
    {
        const TextNode* v = claim(key);
        if (failed() || !v || !expectScalar(key, v))
            return;
        long long parsed = 0;
        if (!parseFullInt(v->scalar, &parsed)) {
            fail(v->line, "value '" + v->scalar + "' for '" + key +
                              "' is not an integer");
            return;
        }
        if (parsed < lo || parsed > hi) {
            fail(v->line, "value " + v->scalar + " for '" + key +
                              "' out of range [" + std::to_string(lo) +
                              ", " + std::to_string(hi) + "]");
            return;
        }
        *out = static_cast<int>(parsed);
    }

    void
    getDouble(const char* key, double lo, double hi, double* out)
    {
        const TextNode* v = claim(key);
        if (failed() || !v || !expectScalar(key, v))
            return;
        double parsed = 0.0;
        if (!parseFullDouble(v->scalar, &parsed)) {
            fail(v->line, "value '" + v->scalar + "' for '" + key +
                              "' is not a number");
            return;
        }
        if (parsed < lo || parsed > hi) {
            fail(v->line, "value " + v->scalar + " for '" + key +
                              "' out of range [" + fmtDouble(lo) + ", " +
                              fmtDouble(hi) + "]");
            return;
        }
        *out = parsed;
    }

    void
    getBool(const char* key, bool* out)
    {
        const TextNode* v = claim(key);
        if (failed() || !v || !expectScalar(key, v))
            return;
        if (v->scalar == "true") {
            *out = true;
        } else if (v->scalar == "false") {
            *out = false;
        } else {
            fail(v->line, "value '" + v->scalar + "' for '" + key +
                              "' must be true or false");
        }
    }

    void
    getEnum(const char* key, const std::vector<const char*>& options,
            std::string* out)
    {
        const TextNode* v = claim(key);
        if (failed() || !v || !expectScalar(key, v))
            return;
        for (const char* opt : options) {
            if (v->scalar == opt) {
                *out = v->scalar;
                return;
            }
        }
        std::string list;
        for (size_t i = 0; i < options.size(); ++i)
            list += std::string(i ? ", " : "") + options[i];
        fail(v->line, "value '" + v->scalar + "' for '" + key +
                          "' must be one of " + list);
    }

    /** Optional nested block of the given kind; nullptr when absent. */
    const TextNode*
    block(const char* key, TextNode::Kind kind)
    {
        const TextNode* v = claim(key);
        if (failed() || !v)
            return nullptr;
        if (v->kind != kind) {
            fail(v->line, std::string("key '") + key + "' expects " +
                              (kind == TextNode::Kind::Map
                                   ? "an indented block"
                                   : "a list") +
                              ", not a value");
            return nullptr;
        }
        return v;
    }

    /** Reject unclaimed keys. Call after every getter has run. */
    bool
    finish()
    {
        if (failed())
            return false;
        for (const auto& [key, value] : node_.entries) {
            if (std::find(claimed_.begin(), claimed_.end(), key) !=
                claimed_.end())
                continue;
            std::string valid;
            for (size_t i = 0; i < claimed_.size(); ++i)
                valid += (i ? ", " : "") + claimed_[i];
            fail(value.line, "unknown key '" + key + "' in " + context_ +
                                 " (valid: " + valid + ")");
            return false;
        }
        return true;
    }

    void
    fail(int line, const std::string& message)
    {
        if (error_.empty())
            error_ = errorAt(filename_, line, message);
    }

  private:
    const TextNode*
    claim(const char* key)
    {
        claimed_.push_back(key);
        return node_.find(key);
    }

    bool
    expectScalar(const char* key, const TextNode* v)
    {
        if (v->kind == TextNode::Kind::Scalar)
            return true;
        fail(v->line, std::string("key '") + key +
                          "' expects a value, not a block");
        return false;
    }

    const TextNode& node_;
    std::string_view filename_;
    std::string context_;
    std::string error_;
    std::vector<std::string> claimed_;
};

/** Compile-time include state: the stack of files being compiled. */
struct CompileCtx
{
    std::vector<std::string> stack; ///< Canonical paths, outermost first.
};

bool compileTree(const TextNode& root, std::string_view filename,
                 const std::string& dir, CompileCtx* ctx, Scenario* out,
                 std::string* err);

bool
compileFaults(const TextNode& node, std::string_view filename,
              ExperimentStage* stage, std::string* err)
{
    MapReader r(node, filename, "faults block");
    fault::FaultPlan& plan = stage->faults;
    r.getDouble("arrivals", 0.0, 1.0, &plan.arrivalProb);
    r.getDouble("departures", 0.0, 1.0, &plan.departureProb);
    r.getDouble("phase-flips", 0.0, 1.0, &plan.phaseFlipProb);
    r.getDouble("dropouts", 0.0, 1.0, &plan.dropoutProb);
    r.getDouble("spikes", 0.0, 1.0, &plan.spikeProb);
    r.getDouble("spike-mag", 0.0, 100.0, &plan.spikeMagnitude);
    r.getDouble("jitter", 0.0, 1.0, &plan.capacityJitterAmp);
    r.getDouble("jitter-window", 0.001, 3600.0,
                &plan.capacityJitterWindowSec);
    r.getUInt("seed", &plan.seed);
    if (!r.failed() && plan.capacityJitterAmp >= 1.0)
        r.fail(node.find("jitter")->line,
               "value " + fmtDouble(plan.capacityJitterAmp) +
                   " for 'jitter' out of range [0, 1)");
    if (!r.finish()) {
        *err = r.error();
        return false;
    }
    if (!plan.enabled()) {
        *err = errorAt(filename, node.line,
                       "faults block enables no fault rate (set one "
                       "of: arrivals, departures, phase-flips, "
                       "dropouts, spikes, jitter)");
        return false;
    }
    stage->hasFaults = true;
    return true;
}

bool
compileExperimentStage(MapReader& r, const TextNode& item,
                       std::string_view filename, Stage* stage,
                       std::string* err)
{
    ExperimentStage& e = stage->experiment;
    r.getInt("servers", 1, 100000, &e.servers);
    r.getInt("victims", 0, 1000000, &e.victims);
    r.getEnum("policy", {"least-loaded", "quasar"}, &e.policy);
    r.getEnum("platform", {"baremetal", "container", "vm"}, &e.platform);
    r.getEnum("isolation",
              {"none", "pinning", "net", "mem", "cache", "core-full",
               "core-only"},
              &e.isolation);
    r.getDouble("obfuscation", 0.0, 1.0, &e.obfuscation);
    const TextNode* faults = r.block("faults", TextNode::Kind::Map);
    if (!r.finish()) {
        *err = r.error();
        return false;
    }
    if (faults && !compileFaults(*faults, filename, &e, err))
        return false;
    (void)item;
    return true;
}

bool
compileServeStage(MapReader& r, const TextNode& item,
                  std::string_view filename, Stage* stage,
                  std::string* err)
{
    ServeStage& s = stage->serve;
    std::string loop = "open";
    r.getEnum("loop", {"open", "closed"}, &loop);
    r.getInt("requests", 1, 10000000, &s.requests);
    r.getDouble("qps", 1e-6, 1e9, &s.qps);
    r.getInt("clients", 1, 100000, &s.clients);
    r.getDouble("think-ms", 0.0, 1e6, &s.thinkMs);
    r.getDouble("slo-ms", 0.001, 1e6, &s.sloMs);
    r.getInt("workers", 1, 256, &s.workers);
    r.getInt("queue-cap", 1, 1000000, &s.queueCap);
    r.getInt("max-batch", 1, 64, &s.maxBatch);
    r.getDouble("batch-setup-ms", 0.0, 1000.0, &s.batchSetupMs);
    r.getDouble("batch-wait-ms", 0.0, 1000.0, &s.batchWaitMs);
    r.getBool("admit-check", &s.admitCheck);
    r.getDouble("decompose-frac", 0.0, 1.0, &s.decomposeFrac);
    const TextNode* arrival = r.block("arrival", TextNode::Kind::Map);
    if (!r.finish()) {
        *err = r.error();
        return false;
    }
    s.loop = loop == "closed" ? LoopKind::Closed : LoopKind::Open;

    if (arrival) {
        MapReader ar(*arrival, filename, "arrival block");
        std::string shape = "steady";
        ar.getEnum("shape", {"steady", "flash-crowd", "diurnal"},
                   &shape);
        ar.getInt("segments", 1, 64, &s.segments);
        ar.getDouble("peak-factor", 1.0, 1000.0, &s.peakFactor);
        ar.getDouble("floor-factor", 0.0, 1.0, &s.floorFactor);
        if (!ar.finish()) {
            *err = ar.error();
            return false;
        }
        s.shape = shape == "flash-crowd" ? ArrivalShape::FlashCrowd
                  : shape == "diurnal"   ? ArrivalShape::Diurnal
                                         : ArrivalShape::Steady;
        if (s.shape != ArrivalShape::Steady &&
            s.loop == LoopKind::Closed) {
            *err = errorAt(filename, arrival->find("shape")->line,
                           "arrival shape '" + shape +
                               "' requires loop: open (a closed loop "
                               "paces itself; offered QPS has no "
                               "effect)");
            return false;
        }
    }
    (void)item;
    return true;
}

bool
compileAttackStage(MapReader& r, const TextNode& item,
                   std::string_view filename, Stage* stage,
                   std::string* err)
{
    AttackStage& a = stage->attack;
    std::string kind;
    r.getEnum("kind", {"dos", "coresidency"}, &kind);
    if (r.failed()) {
        *err = r.error();
        return false;
    }
    if (!item.find("kind")) {
        *err = errorAt(filename, item.line,
                       "missing required key 'kind' in attack stage");
        return false;
    }
    if (kind == "dos") {
        a.kind = AttackKind::Dos;
        r.getDouble("margin", 1.0, 2.0, &a.margin);
        r.getInt("top-resources", 1, 10, &a.topResources);
        r.getDouble("duration-sec", 30.0, 600.0, &a.durationSec);
    } else {
        a.kind = AttackKind::CoResidency;
        r.getInt("probes", 1, 10000, &a.probes);
        r.getInt("waves", 1, 1000, &a.waves);
        r.getInt("victim-vms", 1, 100, &a.victimVms);
    }
    if (!r.finish()) {
        *err = r.error();
        return false;
    }
    return true;
}

bool
compileFleetStage(MapReader& r, const TextNode& item,
                  std::string_view filename, Stage* stage,
                  std::string* err)
{
    FleetStage& f = stage->fleet;
    r.getInt("hosts", 1, 1000000, &f.hosts);
    r.getInt("tenants", 0, 10000000, &f.tenants);
    r.getInt("shards", 1, 4096, &f.shards);
    r.getInt("epochs", 1, 10000, &f.epochs);
    r.getDouble("arrivals", 0.0, 100.0, &f.arrivals);
    r.getDouble("departures", 0.0, 1.0, &f.departures);
    r.getDouble("migrations", 0.0, 1.0, &f.migrations);
    r.getDouble("host-faults", 0.0, 1.0, &f.hostFaults);
    if (!r.finish()) {
        *err = r.error();
        return false;
    }
    (void)item;
    (void)filename;
    return true;
}

bool
compileArmsraceStage(MapReader& r, const TextNode& item,
                     std::string_view filename, Stage* stage,
                     std::string* err)
{
    ArmsraceStage& a = stage->armsrace;
    r.getEnum("allocator",
              {"least-loaded", "quasar", "random", "mab", "secure"},
              &a.allocator);
    r.getEnum("attacker", {"replication", "affinity", "churn"},
              &a.attacker);
    r.getInt("servers", 1, 100000, &a.servers);
    r.getInt("probes", 1, 10000, &a.probes);
    r.getInt("waves", 1, 1000, &a.waves);
    r.getInt("reps", 1, 64, &a.reps);
    r.getDouble("utilization", 5.0, 90.0, &a.utilization);
    if (!r.finish()) {
        *err = r.error();
        return false;
    }
    (void)item;
    (void)filename;
    return true;
}

bool
compileIncludeStage(MapReader& r, const TextNode& item,
                    std::string_view filename, const std::string& dir,
                    CompileCtx* ctx, Stage* stage, std::string* err)
{
    r.getString("path", &stage->includePath, /*required=*/true);
    r.getInt("repeat", 1, 32, &stage->repeat);
    if (!r.finish()) {
        *err = r.error();
        return false;
    }
    const TextNode* path_node = item.find("path");
    int path_line = path_node ? path_node->line : item.line;

    namespace fs = std::filesystem;
    fs::path resolved = fs::path(dir) / stage->includePath;
    std::error_code ec;
    fs::path canonical = fs::weakly_canonical(resolved, ec);
    std::string canon = ec ? resolved.lexically_normal().string()
                           : canonical.string();

    if (std::find(ctx->stack.begin(), ctx->stack.end(), canon) !=
        ctx->stack.end()) {
        *err = errorAt(filename, path_line,
                       "cyclic include of '" + stage->includePath + "'");
        return false;
    }
    if (ctx->stack.size() >= kMaxIncludeDepth) {
        *err = errorAt(filename, path_line,
                       "include depth exceeds " +
                           std::to_string(kMaxIncludeDepth));
        return false;
    }

    std::ifstream in(resolved);
    if (!in) {
        *err = errorAt(filename, path_line,
                       "cannot open include '" + stage->includePath +
                           "'");
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    TextNode sub_root;
    if (!parseText(buffer.str(), resolved.string(), &sub_root, err))
        return false;

    auto sub = std::make_shared<Scenario>();
    sub->sourcePath = resolved.string();
    ctx->stack.push_back(canon);
    bool ok = compileTree(sub_root, resolved.string(),
                          resolved.parent_path().string(), ctx,
                          sub.get(), err);
    ctx->stack.pop_back();
    if (!ok)
        return false;
    stage->sub = std::move(sub);
    return true;
}

/** True when `name` is a counter in the metric catalog. */
bool
isCounterMetric(std::string_view name)
{
    for (size_t i = 0; i < obs::kNumCounters; ++i) {
        if (name == obs::metricInfo(static_cast<obs::MetricId>(i)).name)
            return true;
    }
    return false;
}

bool
compileSloRules(const TextNode& list, std::string_view filename,
                Scenario* out, std::string* err)
{
    for (const TextNode& item : list.items) {
        if (item.kind != TextNode::Kind::Map) {
            *err = errorAt(filename, item.line,
                           "each slo[] item must be a map beginning "
                           "with '- rule: <name>'");
            return false;
        }
        SloRuleSpec spec;
        spec.line = item.line;
        {
            MapReader probe(item, filename, "slo rule");
            probe.getEnum("kind", {"threshold", "burn-rate", "absence"},
                          &spec.kind);
            if (probe.failed()) {
                *err = probe.error();
                return false;
            }
        }
        // Like attack stages, only the keys of the declared kind are
        // claimed, so a stray key fails loudly with the valid set.
        MapReader r(item, filename, spec.kind + " slo rule");
        std::string discard;
        r.getEnum("kind", {"threshold", "burn-rate", "absence"},
                  &discard);
        r.getString("rule", &spec.rule, /*required=*/true);
        r.getString("series", &spec.series, /*required=*/true);
        r.getString("label", &spec.label);
        if (spec.kind == "threshold") {
            r.getEnum("agg",
                      {"count", "sum", "mean", "p50", "p95", "p99"},
                      &spec.agg);
            r.getEnum("op", {"above", "below"}, &spec.op);
            r.getDouble("value", -1e18, 1e18, &spec.value);
            r.getInt("sustain-windows", 1, 10000, &spec.sustainWindows);
        } else if (spec.kind == "burn-rate") {
            r.getString("total-series", &spec.totalSeries,
                        /*required=*/true);
            r.getString("total-label", &spec.totalLabel);
            r.getDouble("budget", 1e-9, 1.0, &spec.budget);
            r.getDouble("value", -1e18, 1e18, &spec.value);
            r.getInt("short-windows", 1, 10000, &spec.shortWindows);
            r.getInt("long-windows", 1, 10000, &spec.longWindows);
        } else {
            r.getInt("windows", 1, 10000, &spec.windows);
        }
        if (!r.finish()) {
            *err = r.error();
            return false;
        }
        obs::SeriesId sid;
        if (!obs::seriesByName(spec.series, &sid)) {
            *err = errorAt(filename, item.find("series")->line,
                           "unknown telemetry series '" + spec.series +
                               "' for 'series'");
            return false;
        }
        if (spec.kind == "burn-rate" &&
            !obs::seriesByName(spec.totalSeries, &sid)) {
            *err = errorAt(filename, item.find("total-series")->line,
                           "unknown telemetry series '" +
                               spec.totalSeries +
                               "' for 'total-series'");
            return false;
        }
        for (const SloRuleSpec& prev : out->sloRules) {
            if (prev.rule == spec.rule) {
                *err = errorAt(filename, item.line,
                               "duplicate slo rule name '" + spec.rule +
                                   "'");
                return false;
            }
        }
        out->sloRules.push_back(std::move(spec));
    }
    return true;
}

bool
compileExpects(const TextNode& list, std::string_view filename,
               Scenario* out, std::string* err)
{
    for (const TextNode& item : list.items) {
        if (item.kind != TextNode::Kind::Map) {
            *err = errorAt(filename, item.line,
                           "each expect[] item must be a map ('- "
                           "metric: ...' or '- slo: ...')");
            return false;
        }
        ExpectSpec e;
        e.line = item.line;
        e.hasMin = item.find("min") != nullptr;
        e.hasMax = item.find("max") != nullptr;
        MapReader r(item, filename, "expect item");
        r.getString("metric", &e.metric);
        r.getUInt("min", &e.min);
        r.getUInt("max", &e.max);
        r.getEnum("slo", {"no-alerts-firing", "fired", "not-fired"},
                  &e.slo);
        r.getString("rule", &e.rule);
        if (!r.finish()) {
            *err = r.error();
            return false;
        }
        if (e.metric.empty() == e.slo.empty()) {
            *err = errorAt(filename, item.line,
                           "expect item needs exactly one of 'metric' "
                           "or 'slo'");
            return false;
        }
        if (!e.metric.empty()) {
            if (!isCounterMetric(e.metric)) {
                *err = errorAt(filename, item.find("metric")->line,
                               "unknown counter metric '" + e.metric +
                                   "' for 'metric'");
                return false;
            }
            if (!e.hasMin && !e.hasMax) {
                *err = errorAt(filename, item.line,
                               "metric expectation on '" + e.metric +
                                   "' needs 'min' and/or 'max'");
                return false;
            }
            if (e.hasMin && e.hasMax && e.min > e.max) {
                *err = errorAt(filename, item.line,
                               "expectation min " +
                                   std::to_string(e.min) +
                                   " exceeds max " +
                                   std::to_string(e.max));
                return false;
            }
            if (!e.rule.empty()) {
                *err = errorAt(filename, item.find("rule")->line,
                               "'rule' is only valid with 'slo'");
                return false;
            }
        } else {
            if (e.hasMin || e.hasMax) {
                *err = errorAt(filename, item.line,
                               "'min'/'max' are only valid with "
                               "'metric'");
                return false;
            }
            bool needs_rule = e.slo != "no-alerts-firing";
            if (needs_rule == e.rule.empty()) {
                *err = errorAt(
                    filename, item.line,
                    needs_rule
                        ? "expect slo: " + e.slo +
                              " requires 'rule: <slo rule name>'"
                        : "'rule' is not valid with slo: "
                          "no-alerts-firing");
                return false;
            }
            if (needs_rule) {
                bool known = false;
                for (const SloRuleSpec& spec : out->sloRules)
                    known = known || spec.rule == e.rule;
                if (!known) {
                    *err = errorAt(filename, item.find("rule")->line,
                                   "expect references undeclared slo "
                                   "rule '" +
                                       e.rule + "'");
                    return false;
                }
            }
        }
        out->expects.push_back(std::move(e));
    }
    return true;
}

bool
compileStage(const TextNode& item, size_t index,
             std::string_view filename, const std::string& dir,
             CompileCtx* ctx, Stage* stage, std::string* err)
{
    if (item.kind != TextNode::Kind::Map || !item.find("stage")) {
        *err = errorAt(filename, item.line,
                       "each stages[] item must begin with "
                       "'- stage: experiment|serve|attack|include|"
                       "fleet|armsrace'");
        return false;
    }

    std::string kind;
    std::string context = "stage";
    {
        MapReader probe(item, filename, context);
        probe.getEnum("stage",
                      {"experiment", "serve", "attack", "include",
                       "fleet", "armsrace"},
                      &kind);
        if (probe.failed()) {
            *err = probe.error();
            return false;
        }
    }
    stage->kind = kind == "experiment" ? StageKind::Experiment
                  : kind == "serve"    ? StageKind::Serve
                  : kind == "attack"   ? StageKind::Attack
                  : kind == "fleet"    ? StageKind::Fleet
                  : kind == "armsrace" ? StageKind::Armsrace
                                       : StageKind::Include;
    stage->name = kind + "-" + std::to_string(index);

    MapReader r(item, filename, kind + " stage");
    std::string discard;
    r.getEnum("stage",
              {"experiment", "serve", "attack", "include", "fleet",
               "armsrace"},
              &discard);
    r.getString("name", &stage->name);
    r.getUInt("seed", &stage->seed);

    switch (stage->kind) {
    case StageKind::Experiment:
        return compileExperimentStage(r, item, filename, stage, err);
    case StageKind::Serve:
        return compileServeStage(r, item, filename, stage, err);
    case StageKind::Attack:
        return compileAttackStage(r, item, filename, stage, err);
    case StageKind::Fleet:
        return compileFleetStage(r, item, filename, stage, err);
    case StageKind::Armsrace:
        return compileArmsraceStage(r, item, filename, stage, err);
    case StageKind::Include:
        return compileIncludeStage(r, item, filename, dir, ctx, stage,
                                   err);
    }
    return false; // Unreachable.
}

bool
compileTree(const TextNode& root, std::string_view filename,
            const std::string& dir, CompileCtx* ctx, Scenario* out,
            std::string* err)
{
    MapReader r(root, filename, "top level");
    r.getString("scenario", &out->name, /*required=*/true);
    r.getString("description", &out->description);
    r.getUInt("seed", &out->seed);
    r.getDouble("slo-window-sec", 0.001, 3600.0, &out->sloWindowSec);
    const TextNode* slo = r.block("slo", TextNode::Kind::List);
    const TextNode* expect = r.block("expect", TextNode::Kind::List);
    const TextNode* stages = r.block("stages", TextNode::Kind::List);
    if (!r.finish()) {
        *err = r.error();
        return false;
    }
    if (slo && !compileSloRules(*slo, filename, out, err))
        return false;
    if (expect && !compileExpects(*expect, filename, out, err))
        return false;
    if (!r.failed() && out->name.empty()) {
        *err = errorAt(filename, root.find("scenario")->line,
                       "scenario name must not be empty");
        return false;
    }
    if (!stages) {
        *err = errorAt(filename, root.line,
                       "missing required key 'stages' in top level");
        return false;
    }
    if (stages->items.empty() ||
        stages->items.size() > static_cast<size_t>(kMaxStages)) {
        *err = errorAt(filename, stages->line,
                       "stages must contain between 1 and " +
                           std::to_string(kMaxStages) + " entries");
        return false;
    }

    out->stages.resize(stages->items.size());
    for (size_t i = 0; i < stages->items.size(); ++i) {
        if (!compileStage(stages->items[i], i, filename, dir, ctx,
                          &out->stages[i], err))
            return false;
    }
    return true;
}

void
dumpStage(const Stage& stage, std::ostream& os)
{
    auto kv = [&os](const char* key, const std::string& value) {
        os << "    " << key << ": " << value << "\n";
    };
    os << "  - stage: " << stageKindName(stage.kind) << "\n";
    kv("name", stage.name);
    kv("seed", std::to_string(stage.seed));
    switch (stage.kind) {
    case StageKind::Experiment: {
        const ExperimentStage& e = stage.experiment;
        kv("servers", std::to_string(e.servers));
        kv("victims", std::to_string(e.victims));
        kv("policy", e.policy);
        kv("platform", e.platform);
        kv("isolation", e.isolation);
        kv("obfuscation", fmtDouble(e.obfuscation));
        if (e.hasFaults) {
            const fault::FaultPlan& p = e.faults;
            os << "    faults:\n";
            auto fv = [&os](const char* key, const std::string& value) {
                os << "      " << key << ": " << value << "\n";
            };
            fv("arrivals", fmtDouble(p.arrivalProb));
            fv("departures", fmtDouble(p.departureProb));
            fv("phase-flips", fmtDouble(p.phaseFlipProb));
            fv("dropouts", fmtDouble(p.dropoutProb));
            fv("spikes", fmtDouble(p.spikeProb));
            fv("spike-mag", fmtDouble(p.spikeMagnitude));
            fv("jitter", fmtDouble(p.capacityJitterAmp));
            fv("jitter-window", fmtDouble(p.capacityJitterWindowSec));
            fv("seed", std::to_string(p.seed));
        }
        break;
    }
    case StageKind::Serve: {
        const ServeStage& s = stage.serve;
        kv("loop", loopKindName(s.loop));
        kv("requests", std::to_string(s.requests));
        kv("qps", fmtDouble(s.qps));
        kv("clients", std::to_string(s.clients));
        kv("think-ms", fmtDouble(s.thinkMs));
        kv("slo-ms", fmtDouble(s.sloMs));
        kv("workers", std::to_string(s.workers));
        kv("queue-cap", std::to_string(s.queueCap));
        kv("max-batch", std::to_string(s.maxBatch));
        kv("batch-setup-ms", fmtDouble(s.batchSetupMs));
        kv("batch-wait-ms", fmtDouble(s.batchWaitMs));
        kv("admit-check", s.admitCheck ? "true" : "false");
        kv("decompose-frac", fmtDouble(s.decomposeFrac));
        os << "    arrival:\n";
        os << "      shape: " << arrivalShapeName(s.shape) << "\n";
        os << "      segments: " << s.segments << "\n";
        os << "      peak-factor: " << fmtDouble(s.peakFactor) << "\n";
        os << "      floor-factor: " << fmtDouble(s.floorFactor)
           << "\n";
        break;
    }
    case StageKind::Attack: {
        const AttackStage& a = stage.attack;
        kv("kind", attackKindName(a.kind));
        if (a.kind == AttackKind::Dos) {
            kv("margin", fmtDouble(a.margin));
            kv("top-resources", std::to_string(a.topResources));
            kv("duration-sec", fmtDouble(a.durationSec));
        } else {
            kv("probes", std::to_string(a.probes));
            kv("waves", std::to_string(a.waves));
            kv("victim-vms", std::to_string(a.victimVms));
        }
        break;
    }
    case StageKind::Fleet: {
        const FleetStage& f = stage.fleet;
        kv("hosts", std::to_string(f.hosts));
        kv("tenants", std::to_string(f.tenants));
        kv("shards", std::to_string(f.shards));
        kv("epochs", std::to_string(f.epochs));
        kv("arrivals", fmtDouble(f.arrivals));
        kv("departures", fmtDouble(f.departures));
        kv("migrations", fmtDouble(f.migrations));
        kv("host-faults", fmtDouble(f.hostFaults));
        break;
    }
    case StageKind::Armsrace: {
        const ArmsraceStage& a = stage.armsrace;
        kv("allocator", a.allocator);
        kv("attacker", a.attacker);
        kv("servers", std::to_string(a.servers));
        kv("probes", std::to_string(a.probes));
        kv("waves", std::to_string(a.waves));
        kv("reps", std::to_string(a.reps));
        kv("utilization", fmtDouble(a.utilization));
        break;
    }
    case StageKind::Include:
        kv("path", stage.includePath);
        kv("repeat", std::to_string(stage.repeat));
        break;
    }
}

void
digestStage(const Stage& stage, util::Fnv1a* d)
{
    auto str = [d](const std::string& s) {
        d->u64(s.size());
        d->str(s);
    };
    d->u8(static_cast<uint8_t>(stage.kind));
    str(stage.name);
    d->u64(stage.seed);
    switch (stage.kind) {
    case StageKind::Experiment: {
        const ExperimentStage& e = stage.experiment;
        d->u64(static_cast<uint64_t>(e.servers));
        d->u64(static_cast<uint64_t>(e.victims));
        str(e.policy);
        str(e.platform);
        str(e.isolation);
        d->f64(e.obfuscation);
        d->u8(e.hasFaults ? 1 : 0);
        if (e.hasFaults) {
            const fault::FaultPlan& p = e.faults;
            d->f64(p.arrivalProb);
            d->f64(p.departureProb);
            d->f64(p.phaseFlipProb);
            d->f64(p.dropoutProb);
            d->f64(p.spikeProb);
            d->f64(p.spikeMagnitude);
            d->f64(p.capacityJitterAmp);
            d->f64(p.capacityJitterWindowSec);
            d->u64(p.seed);
        }
        break;
    }
    case StageKind::Serve: {
        const ServeStage& s = stage.serve;
        d->u8(static_cast<uint8_t>(s.loop));
        d->u64(static_cast<uint64_t>(s.requests));
        d->f64(s.qps);
        d->u64(static_cast<uint64_t>(s.clients));
        d->f64(s.thinkMs);
        d->f64(s.sloMs);
        d->u64(static_cast<uint64_t>(s.workers));
        d->u64(static_cast<uint64_t>(s.queueCap));
        d->u64(static_cast<uint64_t>(s.maxBatch));
        d->f64(s.batchSetupMs);
        d->f64(s.batchWaitMs);
        d->u8(s.admitCheck ? 1 : 0);
        d->f64(s.decomposeFrac);
        d->u8(static_cast<uint8_t>(s.shape));
        d->u64(static_cast<uint64_t>(s.segments));
        d->f64(s.peakFactor);
        d->f64(s.floorFactor);
        break;
    }
    case StageKind::Attack: {
        const AttackStage& a = stage.attack;
        d->u8(static_cast<uint8_t>(a.kind));
        if (a.kind == AttackKind::Dos) {
            d->f64(a.margin);
            d->u64(static_cast<uint64_t>(a.topResources));
            d->f64(a.durationSec);
        } else {
            d->u64(static_cast<uint64_t>(a.probes));
            d->u64(static_cast<uint64_t>(a.waves));
            d->u64(static_cast<uint64_t>(a.victimVms));
        }
        break;
    }
    case StageKind::Fleet: {
        const FleetStage& f = stage.fleet;
        d->u64(static_cast<uint64_t>(f.hosts));
        d->u64(static_cast<uint64_t>(f.tenants));
        d->u64(static_cast<uint64_t>(f.shards));
        d->u64(static_cast<uint64_t>(f.epochs));
        d->f64(f.arrivals);
        d->f64(f.departures);
        d->f64(f.migrations);
        d->f64(f.hostFaults);
        break;
    }
    case StageKind::Armsrace: {
        const ArmsraceStage& a = stage.armsrace;
        str(a.allocator);
        str(a.attacker);
        d->u64(static_cast<uint64_t>(a.servers));
        d->u64(static_cast<uint64_t>(a.probes));
        d->u64(static_cast<uint64_t>(a.waves));
        d->u64(static_cast<uint64_t>(a.reps));
        d->f64(a.utilization);
        break;
    }
    case StageKind::Include:
        str(stage.includePath);
        d->u64(static_cast<uint64_t>(stage.repeat));
        d->u64(stage.sub ? stage.sub->graphDigest() : 0);
        break;
    }
}

} // namespace

const char*
stageKindName(StageKind k)
{
    switch (k) {
    case StageKind::Experiment:
        return "experiment";
    case StageKind::Serve:
        return "serve";
    case StageKind::Attack:
        return "attack";
    case StageKind::Include:
        return "include";
    case StageKind::Fleet:
        return "fleet";
    case StageKind::Armsrace:
        return "armsrace";
    }
    return "?";
}

const char*
attackKindName(AttackKind k)
{
    return k == AttackKind::Dos ? "dos" : "coresidency";
}

const char*
loopKindName(LoopKind k)
{
    return k == LoopKind::Open ? "open" : "closed";
}

const char*
arrivalShapeName(ArrivalShape s)
{
    switch (s) {
    case ArrivalShape::Steady:
        return "steady";
    case ArrivalShape::FlashCrowd:
        return "flash-crowd";
    case ArrivalShape::Diurnal:
        return "diurnal";
    }
    return "?";
}

uint64_t
Scenario::graphDigest() const
{
    util::Fnv1a d;
    auto str = [&d](const std::string& s) {
        d.u64(s.size());
        d.str(s);
    };
    str(name);
    str(description);
    d.u64(seed);
    d.f64(sloWindowSec);
    d.u64(sloRules.size());
    for (const SloRuleSpec& r : sloRules) {
        str(r.rule);
        str(r.kind);
        str(r.series);
        str(r.label);
        str(r.agg);
        str(r.op);
        d.f64(r.value);
        d.u64(static_cast<uint64_t>(r.sustainWindows));
        str(r.totalSeries);
        str(r.totalLabel);
        d.f64(r.budget);
        d.u64(static_cast<uint64_t>(r.shortWindows));
        d.u64(static_cast<uint64_t>(r.longWindows));
        d.u64(static_cast<uint64_t>(r.windows));
    }
    d.u64(expects.size());
    for (const ExpectSpec& e : expects) {
        str(e.metric);
        d.u8(e.hasMin ? 1 : 0);
        d.u64(e.min);
        d.u8(e.hasMax ? 1 : 0);
        d.u64(e.max);
        str(e.slo);
        str(e.rule);
    }
    d.u64(stages.size());
    for (const Stage& stage : stages)
        digestStage(stage, &d);
    return d.h;
}

std::string
Scenario::dump() const
{
    std::ostringstream os;
    os << "scenario: " << name << "\n";
    if (!description.empty())
        os << "description: " << description << "\n";
    os << "seed: " << seed << "\n";
    if (!sloRules.empty() || !expects.empty())
        os << "slo-window-sec: " << fmtDouble(sloWindowSec) << "\n";
    if (!sloRules.empty()) {
        os << "slo:\n";
        for (const SloRuleSpec& r : sloRules) {
            auto kv = [&os](const char* key, const std::string& value) {
                os << "    " << key << ": " << value << "\n";
            };
            os << "  - rule: " << r.rule << "\n";
            kv("kind", r.kind);
            kv("series", r.series);
            if (!r.label.empty())
                kv("label", r.label);
            if (r.kind == "threshold") {
                kv("agg", r.agg);
                kv("op", r.op);
                kv("value", fmtDouble(r.value));
                kv("sustain-windows", std::to_string(r.sustainWindows));
            } else if (r.kind == "burn-rate") {
                kv("total-series", r.totalSeries);
                if (!r.totalLabel.empty())
                    kv("total-label", r.totalLabel);
                kv("budget", fmtDouble(r.budget));
                kv("value", fmtDouble(r.value));
                kv("short-windows", std::to_string(r.shortWindows));
                kv("long-windows", std::to_string(r.longWindows));
            } else {
                kv("windows", std::to_string(r.windows));
            }
        }
    }
    if (!expects.empty()) {
        os << "expect:\n";
        for (const ExpectSpec& e : expects) {
            if (!e.metric.empty()) {
                os << "  - metric: " << e.metric << "\n";
                if (e.hasMin)
                    os << "    min: " << e.min << "\n";
                if (e.hasMax)
                    os << "    max: " << e.max << "\n";
            } else {
                os << "  - slo: " << e.slo << "\n";
                if (!e.rule.empty())
                    os << "    rule: " << e.rule << "\n";
            }
        }
    }
    os << "stages:\n";
    for (const Stage& stage : stages)
        dumpStage(stage, os);
    return os.str();
}

const std::vector<KeyDoc>&
schemaKeys()
{
    static const std::vector<KeyDoc> kKeys = {
        // Top level.
        {"scenario", "string", "-", "-", "meta",
         "Scenario name (required)"},
        {"description", "string", "-", "(empty)", "meta",
         "One-line intent shown in reports"},
        {"seed", "uint", "[0, 2^64)", "1", "sim",
         "Root seed; stages without a seed derive theirs from it"},
        {"slo-window-sec", "double", "[0.001, 3600]", "1", "meta",
         "Telemetry window the runner forces when slo rules exist"},
        {"slo", "list", "-", "(absent)", "meta",
         "Declarative SLO rules the monitor evaluates during the run"},
        {"slo[].rule", "string", "-", "-", "meta",
         "Alert name (required, unique per scenario)"},
        {"slo[].kind", "enum", "threshold | burn-rate | absence",
         "threshold", "meta", "Rule evaluation strategy"},
        {"slo[].series", "string", "-", "-", "meta",
         "Telemetry series the rule watches (required)"},
        {"slo[].label", "string", "-", "(empty)", "meta",
         "Series label; empty reads the unkeyed slot"},
        {"slo[].agg", "enum", "count | sum | mean | p50 | p95 | p99",
         "mean", "meta", "Threshold: per-window aggregate"},
        {"slo[].op", "enum", "above | below", "above", "meta",
         "Threshold: violation direction"},
        {"slo[].value", "double", "[-1e+18, 1e+18]", "0", "meta",
         "Threshold trigger / burn-rate burn factor"},
        {"slo[].sustain-windows", "int", "[1, 10000]", "1", "meta",
         "Threshold: consecutive violating windows before firing"},
        {"slo[].total-series", "string", "-", "-", "meta",
         "Burn-rate denominator series (required)"},
        {"slo[].total-label", "string", "-", "(empty)", "meta",
         "Burn-rate denominator label"},
        {"slo[].budget", "double", "[1e-09, 1]", "0.01", "meta",
         "Burn-rate: allowed bad/total fraction"},
        {"slo[].short-windows", "int", "[1, 10000]", "1", "meta",
         "Burn-rate fast trailing window"},
        {"slo[].long-windows", "int", "[1, 10000]", "1", "meta",
         "Burn-rate slow trailing window"},
        {"slo[].windows", "int", "[1, 10000]", "1", "meta",
         "Absence: consecutive empty windows before firing"},
        {"expect", "list", "-", "(absent)", "meta",
         "End-of-run expectations; a failure exits bolt_cli with 3"},
        {"expect[].metric", "string", "-", "-", "meta",
         "Counter whose run delta is bounded by min/max"},
        {"expect[].min", "uint", "[0, 2^64)", "(absent)", "meta",
         "Inclusive lower bound on the counter delta"},
        {"expect[].max", "uint", "[0, 2^64)", "(absent)", "meta",
         "Inclusive upper bound on the counter delta"},
        {"expect[].slo", "enum", "no-alerts-firing | fired | not-fired",
         "-", "meta", "Alert-state check against the SLO monitor"},
        {"expect[].rule", "string", "-", "-", "meta",
         "Rule name for slo: fired / not-fired"},
        {"stages", "list", "1..64 items", "-", "sim",
         "Ordered stage list (required)"},
        // Common stage keys.
        {"stages[].stage", "enum",
         "experiment | serve | attack | include | fleet | armsrace",
         "-", "sim", "Stage kind discriminator (required, first key)"},
        {"stages[].name", "string", "-", "<kind>-<index>", "meta",
         "Stage display name"},
        {"stages[].seed", "uint", "[0, 2^64)", "0", "sim",
         "Stage seed; 0 derives Rng::stream(scenario seed, {stage-"
         "phase, index})"},
        // Experiment stage.
        {"stages[].servers", "int", "[1, 100000]", "8", "sim",
         "Cluster size (experiment; armsrace defaults to 24)"},
        {"stages[].victims", "int", "[0, 1000000]", "20", "sim",
         "Victim workloads scheduled onto the cluster"},
        {"stages[].policy", "enum", "least-loaded | quasar",
         "least-loaded", "sim", "Placement policy"},
        {"stages[].platform", "enum", "baremetal | container | vm",
         "vm", "sim", "Tenant packaging (Section 6)"},
        {"stages[].isolation", "enum",
         "none | pinning | net | mem | cache | core-full | core-only",
         "none", "sim", "Isolation ladder rung (Fig. 14)"},
        {"stages[].obfuscation", "double", "[0, 1]", "0", "sim",
         "Victim pattern-obfuscation defense amplitude"},
        {"stages[].faults", "map", "-", "(absent)", "sim",
         "Fault-injection plan; must enable at least one rate"},
        {"stages[].faults.arrivals", "double", "[0, 1]", "0", "sim",
         "P(background VM arrives) per host per round"},
        {"stages[].faults.departures", "double", "[0, 1]", "0", "sim",
         "P(victim departs) per victim per round"},
        {"stages[].faults.phase-flips", "double", "[0, 1]", "0", "sim",
         "P(victim load-pattern phase flip) per victim per round"},
        {"stages[].faults.dropouts", "double", "[0, 1]", "0", "sim",
         "P(probe sample lost) per probe"},
        {"stages[].faults.spikes", "double", "[0, 1]", "0", "sim",
         "P(probe sample takes an outlier spike) per probe"},
        {"stages[].faults.spike-mag", "double", "[0, 100]", "35",
         "sim", "Spike amplitude upper bound, pressure points"},
        {"stages[].faults.jitter", "double", "[0, 1)", "0", "sim",
         "Transient capacity-jitter amplitude"},
        {"stages[].faults.jitter-window", "double", "[0.001, 3600]",
         "20", "sim", "Jitter window length, virtual seconds"},
        {"stages[].faults.seed", "uint", "[0, 2^64)", "0", "sim",
         "Fault seed; 0 derives from the stage seed"},
        // Serve stage.
        {"stages[].loop", "enum", "open | closed", "open", "sim",
         "Open-loop Poisson arrivals or closed-loop client lanes"},
        {"stages[].requests", "int", "[1, 10000000]", "1000", "sim",
         "Total requests (split across ramp segments)"},
        {"stages[].qps", "double", "[1e-06, 1e+09]", "1000", "sim",
         "Base offered QPS (open loop); ramps scale it per segment"},
        {"stages[].clients", "int", "[1, 100000]", "16", "sim",
         "Closed-loop client lanes"},
        {"stages[].think-ms", "double", "[0, 1e+06]", "4", "sim",
         "Closed-loop mean think time, sim ms"},
        {"stages[].slo-ms", "double", "[0.001, 1e+06]", "50", "sim",
         "Per-request deadline budget, sim ms"},
        {"stages[].workers", "int", "[1, 256]", "4", "sim",
         "Virtual service lanes of the sim timeline"},
        {"stages[].queue-cap", "int", "[1, 1000000]", "128", "sim",
         "Bounded request-queue capacity"},
        {"stages[].max-batch", "int", "[1, 64]", "8", "sim",
         "Micro-batch size cap (1 disables batching)"},
        {"stages[].batch-setup-ms", "double", "[0, 1000]", "2", "sim",
         "Fixed per-batch service overhead, sim ms"},
        {"stages[].batch-wait-ms", "double", "[0, 1000]", "0", "sim",
         "Optional one-shot batch-fill wait, sim ms"},
        {"stages[].admit-check", "bool", "true | false", "true", "sim",
         "SLO-aware admission control at arrival"},
        {"stages[].decompose-frac", "double", "[0, 1]", "0", "sim",
         "Fraction of requests that are decompose queries"},
        {"stages[].arrival", "map", "-", "(steady)", "sim",
         "Arrival-process shape block"},
        {"stages[].arrival.shape", "enum",
         "steady | flash-crowd | diurnal", "steady", "sim",
         "QPS curve; non-steady shapes require loop: open"},
        {"stages[].arrival.segments", "int", "[1, 64]", "6", "sim",
         "Ramp resolution: back-to-back engine runs"},
        {"stages[].arrival.peak-factor", "double", "[1, 1000]", "4",
         "sim", "Flash-crowd: peak QPS / base QPS"},
        {"stages[].arrival.floor-factor", "double", "[0, 1]", "0.25",
         "sim", "Diurnal: trough QPS / base QPS"},
        // Attack stage.
        {"stages[].kind", "enum", "dos | coresidency", "-", "sim",
         "Attack campaign kind (required)"},
        {"stages[].margin", "double", "[1, 2]", "1.15", "sim",
         "DoS contention margin over the victim's pressure"},
        {"stages[].top-resources", "int", "[1, 10]", "2", "sim",
         "DoS: victim resources stressed"},
        {"stages[].duration-sec", "double", "[30, 600]", "120", "sim",
         "DoS timeline length, virtual seconds"},
        {"stages[].probes", "int", "[1, 10000]", "10", "sim",
         "Probe VMs per wave (coresidency; armsrace defaults to 4)"},
        {"stages[].waves", "int", "[1, 1000]", "8", "sim",
         "Probe waves before giving up (coresidency; armsrace "
         "defaults to 3)"},
        {"stages[].victim-vms", "int", "[1, 100]", "1", "sim",
         "Co-residency: VMs the target user runs"},
        // Fleet stage.
        {"stages[].hosts", "int", "[1, 1000000]", "64", "sim",
         "Fleet: physical hosts simulated"},
        {"stages[].tenants", "int", "[0, 10000000]", "256", "sim",
         "Fleet: tenant VMs placed at boot"},
        {"stages[].shards", "int", "[1, 4096]", "1", "sim",
         "Fleet: host partitions (cross-shard stats only; never the "
         "digest)"},
        {"stages[].epochs", "int", "[1, 10000]", "4", "sim",
         "Fleet: churn + profiling epochs to run"},
        {"stages[].arrivals", "double", "[0, 100]", "0.2", "sim",
         "Fleet: mean VM arrivals per host per epoch"},
        {"stages[].departures", "double", "[0, 1]", "0.04", "sim",
         "Fleet: per-VM per-epoch departure probability"},
        {"stages[].migrations", "double", "[0, 1]", "0.02", "sim",
         "Fleet: per-VM per-epoch migration probability"},
        {"stages[].host-faults", "double", "[0, 1]", "0", "sim",
         "Fleet: per-host per-epoch fault probability"},
        // Armsrace stage.
        {"stages[].allocator", "enum",
         "least-loaded | quasar | random | mab | secure",
         "least-loaded", "sim",
         "Armsrace: allocation policy the campaign attacks"},
        {"stages[].attacker", "enum", "replication | affinity | churn",
         "churn", "sim", "Armsrace: co-location attacker strategy"},
        {"stages[].reps", "int", "[1, 64]", "8", "sim",
         "Armsrace: independent campaigns in the cell"},
        {"stages[].utilization", "double", "[5, 90]", "50", "sim",
         "Armsrace: prefill slot-utilization percent"},
        // Include stage.
        {"stages[].path", "string", "-", "-", "sim",
         "Sub-scenario file, relative to the including file "
         "(required)"},
        {"stages[].repeat", "int", "[1, 32]", "1", "sim",
         "Run the sub-scenario this many times, distinct seeds"},
    };
    return kKeys;
}

bool
compileText(std::string_view source, std::string_view filename,
            Scenario* out, std::string* err)
{
    TextNode root;
    if (!parseText(source, filename, &root, err))
        return false;
    std::string dir =
        std::filesystem::path(filename).parent_path().string();
    CompileCtx ctx;
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path canon = fs::weakly_canonical(fs::path(filename), ec);
    ctx.stack.push_back(ec ? fs::path(filename).lexically_normal().string()
                           : canon.string());
    out->sourcePath = std::string(filename);
    return compileTree(root, filename, dir, &ctx, out, err);
}

bool
compileFile(const std::string& path, Scenario* out, std::string* err)
{
    std::ifstream in(path);
    if (!in) {
        *err = path + ":1: cannot open scenario file";
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    return compileText(buffer.str(), path, out, err);
}

} // namespace scenario
} // namespace bolt

/**
 * @file
 * Domain scenario: detect a co-resident latency-critical service, then
 * launch a victim-tailored internal DoS attack that evades the cloud's
 * load-triggered migration defense (Section 5.1).
 *
 * Walks the attack API end-to-end:
 *   1. detect the victim and recover its resource profile,
 *   2. craft a contention payload from the detected profile,
 *   3. replay the attack timeline against the live-migration defense
 *      and compare with the naive CPU-saturating DoS.
 */
#include <iostream>

#include "attacks/dos.h"
#include "core/detector.h"
#include "sim/cluster.h"
#include "util/table.h"
#include "workloads/generators.h"

using namespace bolt;

int
main()
{
    util::Rng rng(5150);

    // --- Step 1: detection -------------------------------------------------
    util::Rng train_rng = rng.substream("training");
    auto train_specs = workloads::trainingSet(train_rng);
    auto training = core::TrainingSet::fromSpecs(train_specs, train_rng);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    sim::Cluster cluster(1);
    sim::Tenant adversary{cluster.nextTenantId(), 4, true};
    cluster.placeOn(0, adversary);

    util::Rng victim_rng = rng.substream("victim");
    const auto* fam = workloads::findFamily("memcached");
    auto spec = workloads::instantiate(*fam, fam->variants[0], "M",
                                       victim_rng);
    spec.pattern = workloads::LoadPattern::constant(0.9);
    spec.vcpus = 4;
    sim::Tenant victim{cluster.nextTenantId(), spec.vcpus, false};
    cluster.placeOn(0, victim);
    workloads::AppInstance instance(spec, victim_rng.substream("inst"));

    sim::ContentionModel contention(cluster.isolation());
    core::HostEnvironment env;
    env.server = &cluster.server(0);
    env.adversary = adversary.id;
    env.contention = &contention;
    env.pressureAt = [&](double t) {
        sim::PressureMap pm;
        pm[victim.id] = instance.pressureAt(t);
        return pm;
    };

    util::Rng detect_rng = rng.substream("detect");
    auto round = detector.detectOnce(env, 0.0, detect_rng);
    if (round.guesses.empty()) {
        std::cout << "No co-resident detected; aborting attack.\n";
        return 1;
    }
    const auto& guess = round.guesses.front();
    std::cout << "Detected co-resident: " << guess.classLabel
              << " (similarity "
              << util::AsciiTable::num(guess.similarity, 2) << ")\n";
    auto critical = guess.profile.byDecreasingPressure();
    std::cout << "Most critical resources: "
              << sim::resourceName(critical[0]) << ", "
              << sim::resourceName(critical[1]) << "\n";

    // --- Step 2: craft the payload -----------------------------------------
    auto payload = attacks::DosAttack::craftContention(guess.profile);
    std::cout << "Crafted contention payload: " << payload << "\n\n";

    // --- Step 3: attack timeline vs the defense ----------------------------
    attacks::DosTimelineExperiment experiment;
    auto bolt_run = experiment.run(true);
    auto naive_run = experiment.run(false);
    double nominal = bolt_run[5].p99Ms;

    std::cout << "Timeline (memcached victim, migration defense: >70% "
                 "CPU for 60 s -> migrate, 8 s overhead):\n";
    util::AsciiTable table(
        {"t (s)", "Bolt p99 x", "Naive p99 x", "Naive state"});
    for (size_t t = 10; t < bolt_run.size(); t += 20) {
        std::string state = naive_run[t].migrated    ? "migrated away"
                            : naive_run[t].migrating ? "migrating"
                                                     : "under attack";
        if (t < 20)
            state = "pre-attack";
        table.addRow(
            {std::to_string(t),
             util::AsciiTable::num(bolt_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(naive_run[t].p99Ms / nominal, 1),
             state});
    }
    table.print(std::cout);

    std::cout << "\nBolt sustains "
              << util::AsciiTable::num(bolt_run.back().p99Ms / nominal, 0)
              << "x tail inflation at "
              << util::AsciiTable::num(bolt_run.back().cpuUtil, 0)
              << "% utilization - below the defense trigger.\n";
    return 0;
}

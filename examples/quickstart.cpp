/**
 * @file
 * Quickstart: profile a single unknown co-resident from an adversarial
 * VM and identify it with Bolt's hybrid recommender.
 *
 * This walks the full public API surface:
 *   1. build a training set of previously-seen workloads,
 *   2. stand up a host with a victim VM and the Bolt VM,
 *   3. run one detection round and print the similarity distribution.
 */
#include <iostream>

#include "core/detector.h"
#include "core/experiment.h"
#include "workloads/generators.h"

using namespace bolt;

int
main()
{
    util::Rng rng(2017);

    // 1. Train on 120 previously-seen applications (Section 3.4).
    util::Rng train_rng = rng.substream("training");
    auto train_specs = workloads::trainingSet(train_rng);
    auto training = core::TrainingSet::fromSpecs(train_specs, train_rng);
    core::HybridRecommender recommender(training);
    std::cout << "Training set: " << training.size() << " apps, "
              << recommender.conceptsKept()
              << " similarity concepts kept (90% energy)\n";

    // 2. One 8-core/2-thread host: a memcached victim plus the 4-vCPU
    //    adversarial Bolt VM.
    sim::Cluster cluster(1);
    sim::Tenant adversary{cluster.nextTenantId(), 4, true};
    cluster.placeOn(0, adversary);

    util::Rng victim_rng = rng.substream("victim");
    const auto* fam = workloads::findFamily("memcached");
    auto spec = workloads::instantiate(*fam, fam->variants[0], "M",
                                       victim_rng);
    sim::Tenant victim{cluster.nextTenantId(), spec.vcpus, false};
    cluster.placeOn(0, victim);
    workloads::AppInstance instance(spec, victim_rng.substream("inst"));

    std::cout << "Victim (hidden from Bolt): " << spec.label() << " on "
              << spec.vcpus << " vCPUs\n\n";

    // 3. Detect.
    sim::ContentionModel contention(cluster.isolation());
    core::HostEnvironment env;
    env.server = &cluster.server(0);
    env.adversary = adversary.id;
    env.contention = &contention;
    env.pressureAt = [&](double t) {
        sim::PressureMap pm;
        pm[victim.id] = instance.pressureAt(t);
        return pm;
    };

    core::Detector detector(recommender);
    util::Rng detect_rng = rng.substream("detect");
    auto round = detector.detectOnce(env, 0.0, detect_rng);

    std::cout << "Profiling took " << round.profilingSec << "s with "
              << round.benchmarksRun << " microbenchmarks; core shared: "
              << (round.coreShared ? "yes" : "no") << "\n";
    if (round.guesses.empty()) {
        std::cout << "No confident match.\n";
        return 1;
    }
    std::cout << "Similarity distribution:\n";
    for (const auto& [label, share] : round.guesses.front().distribution) {
        std::cout << "  " << label << ": " << share * 100.0 << "%\n";
    }
    std::cout << "\nTop match: " << round.guesses.front().classLabel
              << " (similarity "
              << round.guesses.front().similarity << ")\n";
    std::cout << "Reconstructed profile: "
              << round.guesses.front().profile << "\n";
    bool correct =
        round.guesses.front().classLabel == spec.classLabel();
    std::cout << (correct ? "Detection CORRECT\n"
                          : "Detection incorrect\n");
    return 0;
}

/**
 * @file
 * Domain scenario: a cloud operator evaluating how much of Bolt's
 * detection ability each isolation mechanism removes, and what the
 * strongest defense costs in performance (Section 6). This is the
 * decision-support workflow behind the paper's closing discussion.
 */
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

using namespace bolt;

int
main()
{
    struct Option
    {
        const char* name;
        sim::IsolationConfig config;
        const char* note;
    };
    const sim::Platform vm = sim::Platform::VirtualMachine;
    const std::vector<Option> options = {
        {"Status quo (no extra isolation)",
         sim::IsolationConfig::none(vm),
         "what public clouds offer today"},
        {"LLC partitioning (Intel CAT)",
         sim::IsolationConfig::withCachePartitioning(vm),
         "plus pinning + net/mem partitions"},
        {"Core isolation only",
         sim::IsolationConfig::coreIsolationOnly(vm),
         "no cross-tenant hyperthreads"},
        {"Everything + core isolation",
         sim::IsolationConfig::withCoreIsolation(vm),
         "the only configuration that (mostly) blinds Bolt"},
    };

    std::cout << "== Operator study: isolation vs detectability ==\n";
    util::AsciiTable table({"Configuration", "Bolt accuracy",
                            "Perf penalty (2-thread job)", "Note"});
    for (const auto& opt : options) {
        core::ExperimentConfig cfg;
        cfg.servers = 16;
        cfg.victims = 36;
        cfg.seed = 99;
        cfg.isolation = opt.config;
        auto result = core::ControlledExperiment(cfg).run();
        double penalty = opt.config.selfContentionPenalty(2) - 1.0;
        table.addRow({opt.name,
                      util::AsciiTable::percent(
                          result.aggregateAccuracy()),
                      util::AsciiTable::percent(penalty), opt.note});
    }
    table.print(std::cout);

    std::cout
        << "\nThe trade-off the paper closes on: blinding Bolt costs "
           "~34% execution time (threads of one job contend with each "
           "other), or ~45% utilization if cores are overprovisioned "
           "instead. Strict isolation and high utilization remain at "
           "odds without finer-grained hardware mechanisms.\n";
    return 0;
}

/**
 * @file
 * Command-line driver for libbolt: run any of the library's scenarios
 * with configurable parameters without writing code.
 *
 *   bolt_cli run        --scenario FILE [--dump] [--threads N]
 *   bolt_cli experiment [--servers N] [--victims N] [--seed S]
 *                       [--threads N]
 *                       [--quasar] [--isolation none|pinning|net|mem|
 *                        cache|core-full|core-only]
 *                       [--platform baremetal|container|vm]
 *                       [--obfuscation A]
 *   bolt_cli detect     [--family NAME] [--seed S]
 *   bolt_cli dos        [--seed S]
 *   bolt_cli coresidency [--probes N] [--waves N] [--seed S]
 *   bolt_cli serve-bench [--requests N] [--qps Q] [--workers N]
 *                       [--queue-cap N] [--max-batch N] [--slo-ms MS]
 *                       [--closed-loop --clients N --think-ms MS] ...
 *
 * Every subcommand also takes the shared observability flags:
 *   --metrics-out FILE  write a RunReport JSON (config + metrics)
 *   --trace-out FILE    write a sim-time trace (Chrome JSON; .jsonl
 *                       for flat JSONL)
 *   --log-level L       error|warn|info|debug (default warn)
 *
 * Every run is deterministic for a given seed; --threads only changes
 * wall-clock time, never results, and the observability flags never
 * change results either (scripts/check.sh --obs enforces both).
 *
 * Flag parsing is strict (util::CliArgs): unknown flags, stray
 * positionals, numeric values with trailing garbage ("10x") and
 * out-of-range values ("--threads 99999") all exit 2 with the valid
 * flags listed — a typo must fail loudly, not silently run a default.
 */
#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/coresidency.h"
#include "attacks/dos.h"
#include "core/experiment.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "serve/engine.h"
#include "util/cli_flags.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/generators.h"

using namespace bolt;
using util::CliArgs;
using util::CliFlagSpec;
using util::FlagKind;

namespace {

/** Effectively-unbounded upper limit for 64-bit seed flags. */
constexpr double kSeedMax = 9.3e18;

/**
 * Flags every subcommand accepts. --threads is range-checked here:
 * 0 means hardware concurrency, anything above 512 is a typo, not a
 * machine.
 */
const std::vector<CliFlagSpec> kCommonFlags = {
    {"threads", FlagKind::Int, 0, 512},
};

sim::Platform
parsePlatform(const std::string& name)
{
    if (name == "baremetal")
        return sim::Platform::Baremetal;
    if (name == "container")
        return sim::Platform::Container;
    return sim::Platform::VirtualMachine;
}

sim::IsolationConfig
parseIsolation(const std::string& name, sim::Platform platform)
{
    if (name == "pinning")
        return sim::IsolationConfig::withThreadPinning(platform);
    if (name == "net")
        return sim::IsolationConfig::withNetPartitioning(platform);
    if (name == "mem")
        return sim::IsolationConfig::withMemBwPartitioning(platform);
    if (name == "cache")
        return sim::IsolationConfig::withCachePartitioning(platform);
    if (name == "core-full")
        return sim::IsolationConfig::withCoreIsolation(platform);
    if (name == "core-only")
        return sim::IsolationConfig::coreIsolationOnly(platform);
    return sim::IsolationConfig::none(platform);
}

/** Wall-clock timer for the RunReport (observability only). */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

int
runExperiment(const CliArgs& args)
{
    core::ExperimentConfig cfg;
    cfg.servers = static_cast<size_t>(args.getInt("servers", 40));
    cfg.victims = static_cast<size_t>(args.getInt("victims", 108));
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 1));
    cfg.victimObfuscation = args.getDouble("obfuscation", 0.0);
    if (args.has("quasar"))
        cfg.policy = core::ExperimentConfig::Policy::Quasar;
    cfg.isolation = parseIsolation(
        args.get("isolation", "none"),
        parsePlatform(args.get("platform", "vm")));

    // Fault-injection plan: each --fault-<key> flag maps onto the plan
    // via src/fault's parser; a set of pure modifiers (seed, spike-mag)
    // with no rate enabled is rejected — it would silently do nothing.
    static const char* kFaultKeys[] = {
        "arrivals", "departures", "phase-flips",   "dropouts", "spikes",
        "spike-mag", "jitter",    "jitter-window", "seed"};
    bool any_fault_flag = false;
    std::string fault_err;
    for (const char* key : kFaultKeys) {
        std::string flag = std::string("fault-") + key;
        if (!args.has(flag))
            continue;
        any_fault_flag = true;
        if (!fault::applyFaultFlag(cfg.faults, key, args.get(flag, ""),
                                   &fault_err)) {
            std::cerr << "bolt_cli: " << fault_err << "\n";
            return 2;
        }
    }
    if (!fault::validateFaultFlags(cfg.faults, any_fault_flag,
                                   &fault_err)) {
        std::cerr << "bolt_cli: " << fault_err << "\n";
        return 2;
    }

    obs::RunReport report("experiment");
    report.set("servers", static_cast<uint64_t>(cfg.servers));
    report.set("victims", static_cast<uint64_t>(cfg.victims));
    report.set("seed", cfg.seed);
    report.set("policy", args.has("quasar") ? "quasar" : "least-loaded");
    report.set("platform", args.get("platform", "vm"));
    report.set("isolation", args.get("isolation", "none"));
    report.set("obfuscation", cfg.victimObfuscation);
    report.set("faults_enabled", cfg.faults.enabled());
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));

    WallTimer wall;
    auto result = core::ControlledExperiment(cfg).run();
    report.setWallSeconds(wall.seconds());

    auto& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
        report.setSimSeconds(
            metrics.snapshot()
                .histogram(obs::MetricId::kExperimentHostSimSec)
                .sum);
    }
    report.set("result_digest", hex64(result.digest()));
    obs::writeConfiguredOutputs(report);

    util::AsciiTable table({"Metric", "Value"});
    table.addRow({"Victims scheduled",
                  std::to_string(result.outcomes.size())});
    table.addRow({"Class accuracy", util::AsciiTable::percent(
                                        result.aggregateAccuracy(), 1)});
    table.addRow({"Characteristics accuracy",
                  util::AsciiTable::percent(
                      result.characteristicsAccuracy(), 1)});
    for (const auto& [n, acc] : result.accuracyByCoResidents())
        table.addRow({"Accuracy @ " + std::to_string(n) +
                          " co-resident(s)",
                      util::AsciiTable::percent(acc, 1)});
    if (cfg.faults.enabled())
        table.addRow({"Victims departed (churn)",
                      std::to_string(result.departedCount())});
    table.addRow({"Result digest", hex64(result.digest())});
    table.print(std::cout);
    return 0;
}

int
runDetect(const CliArgs& args)
{
    util::Rng rng(static_cast<uint64_t>(args.getInt("seed", 2017)));
    std::string family = args.get("family", "memcached");
    const auto* fam = workloads::findFamily(family);
    if (!fam) {
        std::cerr << "unknown family: " << family << "\n";
        return 2;
    }

    obs::RunReport report("detect");
    report.set("family", family);
    report.set("seed", static_cast<uint64_t>(args.getInt("seed", 2017)));
    WallTimer wall;

    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    sim::Cluster cluster(1);
    sim::Tenant adversary{cluster.nextTenantId(), 4, true};
    cluster.placeOn(0, adversary);
    util::Rng vr = rng.substream("victim");
    auto spec = workloads::randomSpec(*fam, vr);
    spec.pattern = workloads::LoadPattern::constant(0.9);
    sim::Tenant victim{cluster.nextTenantId(), spec.vcpus, false};
    cluster.placeOn(0, victim);
    workloads::AppInstance instance(spec, vr.substream("inst"));

    sim::ContentionModel contention(cluster.isolation());
    core::HostEnvironment env;
    env.server = &cluster.server(0);
    env.adversary = adversary.id;
    env.contention = &contention;
    env.pressureAt = [&](double t) {
        sim::PressureMap pm;
        pm[victim.id] = instance.pressureAt(t);
        return pm;
    };
    auto round = detector.detectOnce(env, 0.0, rng);

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(round.profilingSec);
    report.set("victim_class", spec.classLabel());
    report.set("top_match", round.topClass());
    report.set("correct", round.topClass() == spec.classLabel());
    obs::writeConfiguredOutputs(report);

    std::cout << "hidden victim: " << spec.classLabel() << "\n";
    if (round.guesses.empty()) {
        std::cout << "no confident match\n";
        return 1;
    }
    for (const auto& [label, share] :
         round.guesses.front().distribution) {
        std::cout << "  " << label << ": "
                  << util::AsciiTable::percent(share, 1) << "\n";
    }
    std::cout << "top match: " << round.topClass() << " ("
              << (round.topClass() == spec.classLabel() ? "correct"
                                                        : "incorrect")
              << ")\n";
    return 0;
}

int
runDos(const CliArgs& args)
{
    attacks::DosTimelineConfig cfg;
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 99));

    obs::RunReport report("dos");
    report.set("seed", cfg.seed);
    WallTimer wall;

    attacks::DosTimelineExperiment experiment(cfg);
    auto bolt_run = experiment.run(true);
    auto naive_run = experiment.run(false);

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(static_cast<double>(bolt_run.size() +
                                             naive_run.size()));
    obs::writeConfiguredOutputs(report);

    double nominal = bolt_run[5].p99Ms;
    util::AsciiTable table(
        {"t", "Bolt p99 x", "Bolt util", "Naive p99 x", "Naive util"});
    for (size_t t = 0; t < bolt_run.size(); t += 15) {
        table.addRow(
            {std::to_string(t),
             util::AsciiTable::num(bolt_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(bolt_run[t].cpuUtil, 0) + "%",
             util::AsciiTable::num(naive_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(naive_run[t].cpuUtil, 0) + "%"});
    }
    table.print(std::cout);
    return 0;
}

int
runCoResidency(const CliArgs& args)
{
    attacks::CoResidencyConfig cfg;
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 7));
    cfg.probeVms = static_cast<size_t>(args.getInt("probes", 10));
    cfg.maxWaves = static_cast<size_t>(args.getInt("waves", 8));

    obs::RunReport report("coresidency");
    report.set("seed", cfg.seed);
    report.set("probes", static_cast<uint64_t>(cfg.probeVms));
    report.set("waves", static_cast<uint64_t>(cfg.maxWaves));
    WallTimer wall;

    auto result = attacks::CoResidencyAttack(cfg).run();

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(result.detectionTimeSec);
    report.set("victim_pinpointed", result.victimPinpointed);
    obs::writeConfiguredOutputs(report);

    util::AsciiTable table({"Metric", "Value"});
    table.addRow({"P(probe lands)",
                  util::AsciiTable::num(result.placementProbability, 3)});
    table.addRow({"Waves used", std::to_string(result.wavesUsed)});
    table.addRow({"Adversarial VMs",
                  std::to_string(result.adversaryVmsUsed)});
    table.addRow({"Baseline latency",
                  util::AsciiTable::num(result.baselineLatencyMs, 2) +
                      " ms"});
    table.addRow({"Latency under attack",
                  util::AsciiTable::num(result.attackLatencyMs, 2) +
                      " ms"});
    table.addRow(
        {"Victim pinpointed", result.victimPinpointed ? "yes" : "no"});
    table.addRow({"Time", util::AsciiTable::num(
                              result.detectionTimeSec, 1) +
                              " s"});
    table.print(std::cout);
    return result.victimPinpointed ? 0 : 1;
}

int
runServeBench(const CliArgs& args)
{
    serve::ServeConfig cfg;
    cfg.workers = static_cast<size_t>(args.getInt("workers", 4));
    cfg.queueCapacity =
        static_cast<size_t>(args.getInt("queue-cap", 128));
    cfg.maxBatch = static_cast<size_t>(args.getInt("max-batch", 8));
    cfg.batchSetupMs = args.getDouble("batch-setup-ms", 2.0);
    cfg.batchWaitMs = args.getDouble("batch-wait-ms", 0.0);
    cfg.batchMarginalCost =
        args.getDouble("batch-marginal-cost", 1.0);
    cfg.admitSloCheck = !args.has("no-admit-check");
    cfg.load.requests =
        static_cast<size_t>(args.getInt("requests", 2000));
    cfg.load.offeredQps = args.getDouble("qps", 1000.0);
    cfg.load.closedLoop = args.has("closed-loop");
    cfg.load.clients = static_cast<size_t>(args.getInt("clients", 16));
    cfg.load.thinkMs = args.getDouble("think-ms", 4.0);
    cfg.load.sloMs = args.getDouble("slo-ms", 50.0);
    cfg.load.decomposeFraction = args.getDouble("decompose-frac", 0.0);
    cfg.load.seed = static_cast<uint64_t>(args.getInt("seed", 1));

    obs::RunReport report("serve-bench");
    report.set("requests", static_cast<uint64_t>(cfg.load.requests));
    report.set("qps", cfg.load.offeredQps);
    report.set("closed_loop", cfg.load.closedLoop);
    report.set("workers", static_cast<uint64_t>(cfg.workers));
    report.set("queue_cap", static_cast<uint64_t>(cfg.queueCapacity));
    report.set("max_batch", static_cast<uint64_t>(cfg.maxBatch));
    report.set("batch_marginal_cost", cfg.batchMarginalCost);
    report.set("slo_ms", cfg.load.sloMs);
    report.set("seed", cfg.load.seed);
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));
    WallTimer wall;

    // Training corpus and recommender, derived from the run seed the
    // same way the detect subcommand builds them.
    util::Rng rng(cfg.load.seed);
    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);

    serve::ServeEngine engine(recommender, cfg);
    auto result = engine.run();
    const serve::ServeStats& st = result.stats;

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(st.makespanMs / 1000.0);
    report.set("result_digest", hex64(result.digest()));
    obs::writeConfiguredOutputs(report);

    // Every value below is Sim-class: byte-identical at any --threads.
    util::AsciiTable table({"Metric", "Value"});
    auto count = [](uint64_t v) { return std::to_string(v); };
    table.addRow({"Requests offered", count(st.offered)});
    table.addRow({"Admitted", count(st.admitted)});
    table.addRow({"Rejected (queue full)", count(st.rejectedQueueFull)});
    table.addRow(
        {"Rejected (SLO infeasible)", count(st.rejectedSloInfeasible)});
    table.addRow({"Shed (deadline expired)", count(st.shedDeadline)});
    table.addRow({"Completed", count(st.completed)});
    table.addRow({"SLO misses (late)", count(st.sloMisses)});
    table.addRow({"Batches", count(st.batches)});
    table.addRow({"Batch deferrals", count(st.batchDeferrals)});
    table.addRow({"Mean batch size",
                  util::AsciiTable::num(st.batchSizes.mean(), 2)});
    table.addRow({"Queue depth peak", count(st.queueDepthPeak)});
    table.addRow({"Makespan (sim)",
                  util::AsciiTable::num(st.makespanMs, 1) + " ms"});
    table.addRow({"Achieved QPS",
                  util::AsciiTable::num(st.achievedQps, 1)});
    table.addRow({"Goodput QPS",
                  util::AsciiTable::num(st.goodputQps, 1)});
    table.addRow({"Latency p50",
                  util::AsciiTable::num(st.latencyMs.percentile(50), 2) +
                      " ms"});
    table.addRow({"Latency p95",
                  util::AsciiTable::num(st.latencyMs.percentile(95), 2) +
                      " ms"});
    table.addRow({"Latency p99",
                  util::AsciiTable::num(st.latencyMs.percentile(99), 2) +
                      " ms"});
    table.addRow({"Result digest", hex64(result.digest())});
    table.print(std::cout);
    return 0;
}

int
runScenarioCmd(const CliArgs& args)
{
    std::string path = args.get("scenario", "");
    if (path.empty()) {
        std::cerr << "bolt_cli: run requires --scenario <file>\n";
        return 2;
    }

    scenario::Scenario s;
    std::string err;
    if (!scenario::compileFile(path, &s, &err)) {
        std::cerr << "bolt_cli: " << err << "\n";
        return 2;
    }

    if (args.has("dump")) {
        // Canonical serialization: every key explicit, recompiles to an
        // identical graph (the round-trip the tests pin).
        std::cout << s.dump();
        return 0;
    }

    obs::RunReport report("run");
    report.set("scenario", s.name);
    report.set("file", path);
    report.set("seed", s.seed);
    report.set("stages", static_cast<uint64_t>(s.stages.size()));
    report.set("graph_digest", hex64(s.graphDigest()));
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));
    WallTimer wall;

    auto result = scenario::runScenario(s, std::cout);

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(result.simSeconds);
    report.set("stages_run", static_cast<uint64_t>(result.stagesRun));
    report.set("run_digest", hex64(result.digest));
    obs::writeConfiguredOutputs(report);
    return 0;
}

void
usage()
{
    std::cout
        << "usage: bolt_cli <run|experiment|detect|dos|coresidency|"
           "serve-bench> [--flag value ...]\n"
           "  run         --scenario FILE (declarative scenario; see\n"
           "              docs/SCENARIOS.md and scenarios/)\n"
           "              --dump (print the canonical form, don't run)\n"
           "  experiment  --servers N --victims N --seed S [--quasar]\n"
           "              --threads N (0 = hardware; any value gives\n"
           "              bit-identical results)\n"
           "              --platform baremetal|container|vm\n"
           "              --isolation none|pinning|net|mem|cache|"
           "core-full|core-only\n"
           "              --obfuscation A\n"
           "              --fault-arrivals P --fault-departures P\n"
           "              --fault-phase-flips P --fault-dropouts P\n"
           "              --fault-spikes P --fault-spike-mag M\n"
           "              --fault-jitter A --fault-jitter-window SEC\n"
           "              --fault-seed S (deterministic fault "
           "injection;\n"
           "              at least one rate must be nonzero)\n"
           "  detect      --family NAME --seed S\n"
           "  dos         --seed S\n"
           "  coresidency --probes N --waves N --seed S\n"
           "  serve-bench --requests N --qps Q --workers N "
           "--queue-cap N\n"
           "              --max-batch N --batch-setup-ms MS "
           "--batch-wait-ms MS\n"
           "              --batch-marginal-cost F (cost of batch\n"
           "              followers relative to the first request;\n"
           "              1 = classic linear-additive model)\n"
           "              --slo-ms MS --decompose-frac F --seed S\n"
           "              --no-admit-check (disable SLO admission "
           "control)\n"
           "              --closed-loop --clients N --think-ms MS\n"
           "observability (any subcommand):\n"
           "  --metrics-out FILE  RunReport JSON: config + metrics "
           "snapshot\n"
           "  --trace-out FILE    sim-time trace (Chrome JSON; .jsonl "
           "= JSONL)\n"
           "  --log-level L       error|warn|info|debug (default "
           "warn)\n"
           "unknown flags are rejected\n";
}

const std::vector<CliFlagSpec> kExperimentFlags = {
    {"servers", FlagKind::Int, 1, 100000},
    {"victims", FlagKind::Int, 0, 1000000},
    {"seed", FlagKind::UInt, 0, kSeedMax},
    {"quasar", FlagKind::Flag},
    {"platform", FlagKind::String},
    {"isolation", FlagKind::String},
    {"obfuscation", FlagKind::Double, 0.0, 100.0},
    // Fault values stay strings: src/fault's parser owns their
    // validation (rates in [0,1], windows > 0, ...).
    {"fault-arrivals", FlagKind::String},
    {"fault-departures", FlagKind::String},
    {"fault-phase-flips", FlagKind::String},
    {"fault-dropouts", FlagKind::String},
    {"fault-spikes", FlagKind::String},
    {"fault-spike-mag", FlagKind::String},
    {"fault-jitter", FlagKind::String},
    {"fault-jitter-window", FlagKind::String},
    {"fault-seed", FlagKind::String},
};
const std::vector<CliFlagSpec> kDetectFlags = {
    {"family", FlagKind::String},
    {"seed", FlagKind::UInt, 0, kSeedMax},
};
const std::vector<CliFlagSpec> kDosFlags = {
    {"seed", FlagKind::UInt, 0, kSeedMax},
};
const std::vector<CliFlagSpec> kCoResidencyFlags = {
    {"probes", FlagKind::Int, 1, 10000},
    {"waves", FlagKind::Int, 1, 1000},
    {"seed", FlagKind::UInt, 0, kSeedMax},
};
const std::vector<CliFlagSpec> kRunFlags = {
    {"scenario", FlagKind::String},
    {"dump", FlagKind::Flag},
};
const std::vector<CliFlagSpec> kServeBenchFlags = {
    {"requests", FlagKind::Int, 1, 10000000},
    {"qps", FlagKind::Double, 1e-6, 1e9},
    {"workers", FlagKind::Int, 1, 256},
    {"queue-cap", FlagKind::Int, 1, 1000000},
    {"max-batch", FlagKind::Int, 1, 64},
    {"batch-setup-ms", FlagKind::Double, 0.0, 1000.0},
    {"batch-wait-ms", FlagKind::Double, 0.0, 1000.0},
    {"batch-marginal-cost", FlagKind::Double, 0.0, 1.0},
    {"slo-ms", FlagKind::Double, 0.001, 1e6},
    {"decompose-frac", FlagKind::Double, 0.0, 1.0},
    {"seed", FlagKind::UInt, 0, kSeedMax},
    {"closed-loop", FlagKind::Flag},
    {"clients", FlagKind::Int, 1, 100000},
    {"think-ms", FlagKind::Double, 0.0, 1e6},
    {"no-admit-check", FlagKind::Flag},
};

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    // Consumes --metrics-out/--trace-out/--log-level and enables the
    // subsystems; must run before the strict parser below sees argv.
    if (!obs::applyObsFlags(argc, argv))
        return 2;

    std::string command = argv[1];
    const std::vector<CliFlagSpec>* spec = nullptr;
    int (*run)(const CliArgs&) = nullptr;
    if (command == "run") {
        spec = &kRunFlags;
        run = runScenarioCmd;
    } else if (command == "experiment") {
        spec = &kExperimentFlags;
        run = runExperiment;
    } else if (command == "detect") {
        spec = &kDetectFlags;
        run = runDetect;
    } else if (command == "dos") {
        spec = &kDosFlags;
        run = runDos;
    } else if (command == "coresidency") {
        spec = &kCoResidencyFlags;
        run = runCoResidency;
    } else if (command == "serve-bench") {
        spec = &kServeBenchFlags;
        run = runServeBench;
    } else {
        std::cerr << "bolt_cli: unknown command '" << command << "'\n";
        usage();
        return 2;
    }

    CliArgs args;
    std::string err;
    if (!args.parse(argc, argv, 2, *spec, kCommonFlags, &err)) {
        std::cerr << "bolt_cli: " << err;
        return 2;
    }
    // --threads was validated by the parser ([0, 512]; 0 = hardware).
    // The lenient applyThreadsFlag stays for the bench drivers; the CLI
    // goes through the strict path.
    util::ThreadPool::setGlobalThreads(
        static_cast<unsigned>(args.getInt("threads", 0)));
    return run(args);
}

/**
 * @file
 * Command-line driver for libbolt: run any of the library's scenarios
 * with configurable parameters without writing code.
 *
 *   bolt_cli experiment [--servers N] [--victims N] [--seed S]
 *                       [--threads N]
 *                       [--quasar] [--isolation none|pinning|net|mem|
 *                        cache|core-full|core-only]
 *                       [--platform baremetal|container|vm]
 *                       [--obfuscation A]
 *   bolt_cli detect     [--family NAME] [--seed S]
 *   bolt_cli dos        [--seed S]
 *   bolt_cli coresidency [--probes N] [--waves N] [--seed S]
 *
 * Every subcommand also takes the shared observability flags:
 *   --metrics-out FILE  write a RunReport JSON (config + metrics)
 *   --trace-out FILE    write a sim-time trace (Chrome JSON; .jsonl
 *                       for flat JSONL)
 *   --log-level L       error|warn|info|debug (default warn)
 *
 * Every run is deterministic for a given seed; --threads only changes
 * wall-clock time, never results, and the observability flags never
 * change results either (scripts/check.sh --obs enforces both).
 *
 * Unknown flags are an error: a typo'd --victms must not silently run
 * the default experiment.
 */
#include <chrono>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/coresidency.h"
#include "attacks/dos.h"
#include "core/experiment.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/generators.h"

using namespace bolt;

namespace {

/** One accepted flag of a subcommand. */
struct FlagSpec
{
    const char* name; ///< Without the leading "--".
    bool takesValue;
};

/** Flags every subcommand accepts (consumed before Args sees them,
 * except --threads, which applyThreadsFlag reads in place). */
const std::vector<FlagSpec> kCommonFlags = {
    {"threads", true},
};

/**
 * Strict flag parser: --name [value] tokens after the subcommand,
 * validated against the subcommand's spec. Unknown flags, missing
 * values and stray positional tokens are errors — a typo must fail
 * loudly, not silently run a default configuration.
 */
class Args
{
  public:
    /** @return false (with a message on stderr) on any parse error. */
    bool
    parse(int argc, char** argv, int first,
          const std::vector<FlagSpec>& spec)
    {
        auto find = [&spec](const std::string& name) -> const FlagSpec* {
            for (const auto& f : spec)
                if (name == f.name)
                    return &f;
            for (const auto& f : kCommonFlags)
                if (name == f.name)
                    return &f;
            return nullptr;
        };
        for (int i = first; i < argc; ++i) {
            if (std::strncmp(argv[i], "--", 2) != 0) {
                std::cerr << "bolt_cli: unexpected argument '" << argv[i]
                          << "'\n"
                          << validFlagsLine(spec);
                return false;
            }
            std::string name = argv[i] + 2;
            const FlagSpec* f = find(name);
            if (!f) {
                std::cerr << "bolt_cli: unknown flag '--" << name << "'\n"
                          << validFlagsLine(spec);
                return false;
            }
            if (f->takesValue) {
                if (i + 1 >= argc) {
                    std::cerr << "bolt_cli: flag '--" << name
                              << "' requires a value\n";
                    return false;
                }
                values_[name] = argv[++i];
            } else {
                values_[name] = "";
            }
        }
        return true;
    }

    std::string
    get(const std::string& name, const std::string& fallback) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? fallback : it->second;
    }

    long
    getInt(const std::string& name, long fallback) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? fallback : std::stol(it->second);
    }

    double
    getDouble(const std::string& name, double fallback) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? fallback : std::stod(it->second);
    }

    bool has(const std::string& name) const { return values_.count(name); }

  private:
    static std::string
    validFlagsLine(const std::vector<FlagSpec>& spec)
    {
        std::string line = "valid flags:";
        for (const auto& f : spec)
            line += std::string(" --") + f.name;
        for (const auto& f : kCommonFlags)
            line += std::string(" --") + f.name;
        line += " --metrics-out --trace-out --log-level\n";
        return line;
    }

    std::map<std::string, std::string> values_;
};

sim::Platform
parsePlatform(const std::string& name)
{
    if (name == "baremetal")
        return sim::Platform::Baremetal;
    if (name == "container")
        return sim::Platform::Container;
    return sim::Platform::VirtualMachine;
}

sim::IsolationConfig
parseIsolation(const std::string& name, sim::Platform platform)
{
    if (name == "pinning")
        return sim::IsolationConfig::withThreadPinning(platform);
    if (name == "net")
        return sim::IsolationConfig::withNetPartitioning(platform);
    if (name == "mem")
        return sim::IsolationConfig::withMemBwPartitioning(platform);
    if (name == "cache")
        return sim::IsolationConfig::withCachePartitioning(platform);
    if (name == "core-full")
        return sim::IsolationConfig::withCoreIsolation(platform);
    if (name == "core-only")
        return sim::IsolationConfig::coreIsolationOnly(platform);
    return sim::IsolationConfig::none(platform);
}

/** Wall-clock timer for the RunReport (observability only). */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

int
runExperiment(const Args& args)
{
    core::ExperimentConfig cfg;
    cfg.servers = static_cast<size_t>(args.getInt("servers", 40));
    cfg.victims = static_cast<size_t>(args.getInt("victims", 108));
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 1));
    cfg.victimObfuscation = args.getDouble("obfuscation", 0.0);
    if (args.has("quasar"))
        cfg.policy = core::ExperimentConfig::Policy::Quasar;
    cfg.isolation = parseIsolation(
        args.get("isolation", "none"),
        parsePlatform(args.get("platform", "vm")));

    // Fault-injection plan: each --fault-<key> flag maps onto the plan
    // via src/fault's parser; a set of pure modifiers (seed, spike-mag)
    // with no rate enabled is rejected — it would silently do nothing.
    static const char* kFaultKeys[] = {
        "arrivals", "departures", "phase-flips",   "dropouts", "spikes",
        "spike-mag", "jitter",    "jitter-window", "seed"};
    bool any_fault_flag = false;
    std::string fault_err;
    for (const char* key : kFaultKeys) {
        std::string flag = std::string("fault-") + key;
        if (!args.has(flag))
            continue;
        any_fault_flag = true;
        if (!fault::applyFaultFlag(cfg.faults, key, args.get(flag, ""),
                                   &fault_err)) {
            std::cerr << "bolt_cli: " << fault_err << "\n";
            return 2;
        }
    }
    if (!fault::validateFaultFlags(cfg.faults, any_fault_flag,
                                   &fault_err)) {
        std::cerr << "bolt_cli: " << fault_err << "\n";
        return 2;
    }

    obs::RunReport report("experiment");
    report.set("servers", static_cast<uint64_t>(cfg.servers));
    report.set("victims", static_cast<uint64_t>(cfg.victims));
    report.set("seed", cfg.seed);
    report.set("policy", args.has("quasar") ? "quasar" : "least-loaded");
    report.set("platform", args.get("platform", "vm"));
    report.set("isolation", args.get("isolation", "none"));
    report.set("obfuscation", cfg.victimObfuscation);
    report.set("faults_enabled", cfg.faults.enabled());
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));

    WallTimer wall;
    auto result = core::ControlledExperiment(cfg).run();
    report.setWallSeconds(wall.seconds());

    auto& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
        report.setSimSeconds(
            metrics.snapshot()
                .histogram(obs::MetricId::kExperimentHostSimSec)
                .sum);
    }
    report.set("result_digest", hex64(result.digest()));
    obs::writeConfiguredOutputs(report);

    util::AsciiTable table({"Metric", "Value"});
    table.addRow({"Victims scheduled",
                  std::to_string(result.outcomes.size())});
    table.addRow({"Class accuracy", util::AsciiTable::percent(
                                        result.aggregateAccuracy(), 1)});
    table.addRow({"Characteristics accuracy",
                  util::AsciiTable::percent(
                      result.characteristicsAccuracy(), 1)});
    for (const auto& [n, acc] : result.accuracyByCoResidents())
        table.addRow({"Accuracy @ " + std::to_string(n) +
                          " co-resident(s)",
                      util::AsciiTable::percent(acc, 1)});
    if (cfg.faults.enabled())
        table.addRow({"Victims departed (churn)",
                      std::to_string(result.departedCount())});
    table.addRow({"Result digest", hex64(result.digest())});
    table.print(std::cout);
    return 0;
}

int
runDetect(const Args& args)
{
    util::Rng rng(static_cast<uint64_t>(args.getInt("seed", 2017)));
    std::string family = args.get("family", "memcached");
    const auto* fam = workloads::findFamily(family);
    if (!fam) {
        std::cerr << "unknown family: " << family << "\n";
        return 2;
    }

    obs::RunReport report("detect");
    report.set("family", family);
    report.set("seed", static_cast<uint64_t>(args.getInt("seed", 2017)));
    WallTimer wall;

    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    sim::Cluster cluster(1);
    sim::Tenant adversary{cluster.nextTenantId(), 4, true};
    cluster.placeOn(0, adversary);
    util::Rng vr = rng.substream("victim");
    auto spec = workloads::randomSpec(*fam, vr);
    spec.pattern = workloads::LoadPattern::constant(0.9);
    sim::Tenant victim{cluster.nextTenantId(), spec.vcpus, false};
    cluster.placeOn(0, victim);
    workloads::AppInstance instance(spec, vr.substream("inst"));

    sim::ContentionModel contention(cluster.isolation());
    core::HostEnvironment env;
    env.server = &cluster.server(0);
    env.adversary = adversary.id;
    env.contention = &contention;
    env.pressureAt = [&](double t) {
        sim::PressureMap pm;
        pm[victim.id] = instance.pressureAt(t);
        return pm;
    };
    auto round = detector.detectOnce(env, 0.0, rng);

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(round.profilingSec);
    report.set("victim_class", spec.classLabel());
    report.set("top_match", round.topClass());
    report.set("correct", round.topClass() == spec.classLabel());
    obs::writeConfiguredOutputs(report);

    std::cout << "hidden victim: " << spec.classLabel() << "\n";
    if (round.guesses.empty()) {
        std::cout << "no confident match\n";
        return 1;
    }
    for (const auto& [label, share] :
         round.guesses.front().distribution) {
        std::cout << "  " << label << ": "
                  << util::AsciiTable::percent(share, 1) << "\n";
    }
    std::cout << "top match: " << round.topClass() << " ("
              << (round.topClass() == spec.classLabel() ? "correct"
                                                        : "incorrect")
              << ")\n";
    return 0;
}

int
runDos(const Args& args)
{
    attacks::DosTimelineConfig cfg;
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 99));

    obs::RunReport report("dos");
    report.set("seed", cfg.seed);
    WallTimer wall;

    attacks::DosTimelineExperiment experiment(cfg);
    auto bolt_run = experiment.run(true);
    auto naive_run = experiment.run(false);

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(static_cast<double>(bolt_run.size() +
                                             naive_run.size()));
    obs::writeConfiguredOutputs(report);

    double nominal = bolt_run[5].p99Ms;
    util::AsciiTable table(
        {"t", "Bolt p99 x", "Bolt util", "Naive p99 x", "Naive util"});
    for (size_t t = 0; t < bolt_run.size(); t += 15) {
        table.addRow(
            {std::to_string(t),
             util::AsciiTable::num(bolt_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(bolt_run[t].cpuUtil, 0) + "%",
             util::AsciiTable::num(naive_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(naive_run[t].cpuUtil, 0) + "%"});
    }
    table.print(std::cout);
    return 0;
}

int
runCoResidency(const Args& args)
{
    attacks::CoResidencyConfig cfg;
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 7));
    cfg.probeVms = static_cast<size_t>(args.getInt("probes", 10));
    cfg.maxWaves = static_cast<size_t>(args.getInt("waves", 8));

    obs::RunReport report("coresidency");
    report.set("seed", cfg.seed);
    report.set("probes", static_cast<uint64_t>(cfg.probeVms));
    report.set("waves", static_cast<uint64_t>(cfg.maxWaves));
    WallTimer wall;

    auto result = attacks::CoResidencyAttack(cfg).run();

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(result.detectionTimeSec);
    report.set("victim_pinpointed", result.victimPinpointed);
    obs::writeConfiguredOutputs(report);

    util::AsciiTable table({"Metric", "Value"});
    table.addRow({"P(probe lands)",
                  util::AsciiTable::num(result.placementProbability, 3)});
    table.addRow({"Waves used", std::to_string(result.wavesUsed)});
    table.addRow({"Adversarial VMs",
                  std::to_string(result.adversaryVmsUsed)});
    table.addRow({"Baseline latency",
                  util::AsciiTable::num(result.baselineLatencyMs, 2) +
                      " ms"});
    table.addRow({"Latency under attack",
                  util::AsciiTable::num(result.attackLatencyMs, 2) +
                      " ms"});
    table.addRow(
        {"Victim pinpointed", result.victimPinpointed ? "yes" : "no"});
    table.addRow({"Time", util::AsciiTable::num(
                              result.detectionTimeSec, 1) +
                              " s"});
    table.print(std::cout);
    return result.victimPinpointed ? 0 : 1;
}

void
usage()
{
    std::cout
        << "usage: bolt_cli <experiment|detect|dos|coresidency> "
           "[--flag value ...]\n"
           "  experiment  --servers N --victims N --seed S [--quasar]\n"
           "              --threads N (0 = hardware; any value gives\n"
           "              bit-identical results)\n"
           "              --platform baremetal|container|vm\n"
           "              --isolation none|pinning|net|mem|cache|"
           "core-full|core-only\n"
           "              --obfuscation A\n"
           "              --fault-arrivals P --fault-departures P\n"
           "              --fault-phase-flips P --fault-dropouts P\n"
           "              --fault-spikes P --fault-spike-mag M\n"
           "              --fault-jitter A --fault-jitter-window SEC\n"
           "              --fault-seed S (deterministic fault "
           "injection;\n"
           "              at least one rate must be nonzero)\n"
           "  detect      --family NAME --seed S\n"
           "  dos         --seed S\n"
           "  coresidency --probes N --waves N --seed S\n"
           "observability (any subcommand):\n"
           "  --metrics-out FILE  RunReport JSON: config + metrics "
           "snapshot\n"
           "  --trace-out FILE    sim-time trace (Chrome JSON; .jsonl "
           "= JSONL)\n"
           "  --log-level L       error|warn|info|debug (default "
           "warn)\n"
           "unknown flags are rejected\n";
}

const std::vector<FlagSpec> kExperimentFlags = {
    {"servers", true},          {"victims", true},
    {"seed", true},             {"quasar", false},
    {"platform", true},         {"isolation", true},
    {"obfuscation", true},      {"fault-arrivals", true},
    {"fault-departures", true}, {"fault-phase-flips", true},
    {"fault-dropouts", true},   {"fault-spikes", true},
    {"fault-spike-mag", true},  {"fault-jitter", true},
    {"fault-jitter-window", true}, {"fault-seed", true},
};
const std::vector<FlagSpec> kDetectFlags = {
    {"family", true},
    {"seed", true},
};
const std::vector<FlagSpec> kDosFlags = {
    {"seed", true},
};
const std::vector<FlagSpec> kCoResidencyFlags = {
    {"probes", true},
    {"waves", true},
    {"seed", true},
};

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    // Consumes --metrics-out/--trace-out/--log-level and enables the
    // subsystems; must run before the strict parser below sees argv.
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    std::string command = argv[1];
    const std::vector<FlagSpec>* spec = nullptr;
    int (*run)(const Args&) = nullptr;
    if (command == "experiment") {
        spec = &kExperimentFlags;
        run = runExperiment;
    } else if (command == "detect") {
        spec = &kDetectFlags;
        run = runDetect;
    } else if (command == "dos") {
        spec = &kDosFlags;
        run = runDos;
    } else if (command == "coresidency") {
        spec = &kCoResidencyFlags;
        run = runCoResidency;
    } else {
        std::cerr << "bolt_cli: unknown command '" << command << "'\n";
        usage();
        return 2;
    }

    Args args;
    if (!args.parse(argc, argv, 2, *spec))
        return 2;
    return run(args);
}

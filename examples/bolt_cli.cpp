/**
 * @file
 * Command-line driver for libbolt: run any of the library's scenarios
 * with configurable parameters without writing code.
 *
 *   bolt_cli experiment [--servers N] [--victims N] [--seed S]
 *                       [--threads N]
 *                       [--quasar] [--isolation none|pinning|net|mem|
 *                        cache|core-full|core-only]
 *                       [--platform baremetal|container|vm]
 *                       [--obfuscation A]
 *   bolt_cli detect     [--family NAME] [--seed S]
 *   bolt_cli dos        [--seed S]
 *   bolt_cli coresidency [--probes N] [--waves N] [--seed S]
 *
 * Every run is deterministic for a given seed; --threads only
 * changes wall-clock time, never results.
 */
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "attacks/coresidency.h"
#include "attacks/dos.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/generators.h"

using namespace bolt;

namespace {

/** Minimal flag parser: --name value pairs after the subcommand. */
class Args
{
  public:
    Args(int argc, char** argv, int first) : argc_(argc), argv_(argv)
    {
        for (int i = first; i + 1 < argc_; i += 2) {
            if (std::strncmp(argv_[i], "--", 2) == 0)
                values_[argv_[i] + 2] = argv_[i + 1];
        }
        for (int i = first; i < argc_; ++i)
            if (std::strncmp(argv_[i], "--", 2) == 0)
                flags_.insert(argv_[i] + 2);
    }

    std::string
    get(const std::string& name, const std::string& fallback) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? fallback : it->second;
    }

    long
    getInt(const std::string& name, long fallback) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? fallback : std::stol(it->second);
    }

    double
    getDouble(const std::string& name, double fallback) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? fallback : std::stod(it->second);
    }

    bool has(const std::string& name) const { return flags_.count(name); }

  private:
    int argc_;
    char** argv_;
    std::map<std::string, std::string> values_;
    std::set<std::string> flags_;
};

sim::Platform
parsePlatform(const std::string& name)
{
    if (name == "baremetal")
        return sim::Platform::Baremetal;
    if (name == "container")
        return sim::Platform::Container;
    return sim::Platform::VirtualMachine;
}

sim::IsolationConfig
parseIsolation(const std::string& name, sim::Platform platform)
{
    if (name == "pinning")
        return sim::IsolationConfig::withThreadPinning(platform);
    if (name == "net")
        return sim::IsolationConfig::withNetPartitioning(platform);
    if (name == "mem")
        return sim::IsolationConfig::withMemBwPartitioning(platform);
    if (name == "cache")
        return sim::IsolationConfig::withCachePartitioning(platform);
    if (name == "core-full")
        return sim::IsolationConfig::withCoreIsolation(platform);
    if (name == "core-only")
        return sim::IsolationConfig::coreIsolationOnly(platform);
    return sim::IsolationConfig::none(platform);
}

int
runExperiment(const Args& args)
{
    core::ExperimentConfig cfg;
    cfg.servers = static_cast<size_t>(args.getInt("servers", 40));
    cfg.victims = static_cast<size_t>(args.getInt("victims", 108));
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 1));
    cfg.victimObfuscation = args.getDouble("obfuscation", 0.0);
    if (args.has("quasar"))
        cfg.policy = core::ExperimentConfig::Policy::Quasar;
    cfg.isolation = parseIsolation(
        args.get("isolation", "none"),
        parsePlatform(args.get("platform", "vm")));

    auto result = core::ControlledExperiment(cfg).run();
    util::AsciiTable table({"Metric", "Value"});
    table.addRow({"Victims scheduled",
                  std::to_string(result.outcomes.size())});
    table.addRow({"Class accuracy", util::AsciiTable::percent(
                                        result.aggregateAccuracy(), 1)});
    table.addRow({"Characteristics accuracy",
                  util::AsciiTable::percent(
                      result.characteristicsAccuracy(), 1)});
    for (const auto& [n, acc] : result.accuracyByCoResidents())
        table.addRow({"Accuracy @ " + std::to_string(n) +
                          " co-resident(s)",
                      util::AsciiTable::percent(acc, 1)});
    table.print(std::cout);
    return 0;
}

int
runDetect(const Args& args)
{
    util::Rng rng(static_cast<uint64_t>(args.getInt("seed", 2017)));
    std::string family = args.get("family", "memcached");
    const auto* fam = workloads::findFamily(family);
    if (!fam) {
        std::cerr << "unknown family: " << family << "\n";
        return 2;
    }

    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    sim::Cluster cluster(1);
    sim::Tenant adversary{cluster.nextTenantId(), 4, true};
    cluster.placeOn(0, adversary);
    util::Rng vr = rng.substream("victim");
    auto spec = workloads::randomSpec(*fam, vr);
    spec.pattern = workloads::LoadPattern::constant(0.9);
    sim::Tenant victim{cluster.nextTenantId(), spec.vcpus, false};
    cluster.placeOn(0, victim);
    workloads::AppInstance instance(spec, vr.substream("inst"));

    sim::ContentionModel contention(cluster.isolation());
    core::HostEnvironment env;
    env.server = &cluster.server(0);
    env.adversary = adversary.id;
    env.contention = &contention;
    env.pressureAt = [&](double t) {
        sim::PressureMap pm;
        pm[victim.id] = instance.pressureAt(t);
        return pm;
    };
    auto round = detector.detectOnce(env, 0.0, rng);
    std::cout << "hidden victim: " << spec.classLabel() << "\n";
    if (round.guesses.empty()) {
        std::cout << "no confident match\n";
        return 1;
    }
    for (const auto& [label, share] :
         round.guesses.front().distribution) {
        std::cout << "  " << label << ": "
                  << util::AsciiTable::percent(share, 1) << "\n";
    }
    std::cout << "top match: " << round.topClass() << " ("
              << (round.topClass() == spec.classLabel() ? "correct"
                                                        : "incorrect")
              << ")\n";
    return 0;
}

int
runDos(const Args& args)
{
    attacks::DosTimelineConfig cfg;
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 99));
    attacks::DosTimelineExperiment experiment(cfg);
    auto bolt_run = experiment.run(true);
    auto naive_run = experiment.run(false);
    double nominal = bolt_run[5].p99Ms;
    util::AsciiTable table(
        {"t", "Bolt p99 x", "Bolt util", "Naive p99 x", "Naive util"});
    for (size_t t = 0; t < bolt_run.size(); t += 15) {
        table.addRow(
            {std::to_string(t),
             util::AsciiTable::num(bolt_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(bolt_run[t].cpuUtil, 0) + "%",
             util::AsciiTable::num(naive_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(naive_run[t].cpuUtil, 0) + "%"});
    }
    table.print(std::cout);
    return 0;
}

int
runCoResidency(const Args& args)
{
    attacks::CoResidencyConfig cfg;
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 7));
    cfg.probeVms = static_cast<size_t>(args.getInt("probes", 10));
    cfg.maxWaves = static_cast<size_t>(args.getInt("waves", 8));
    auto result = attacks::CoResidencyAttack(cfg).run();
    util::AsciiTable table({"Metric", "Value"});
    table.addRow({"P(probe lands)",
                  util::AsciiTable::num(result.placementProbability, 3)});
    table.addRow({"Waves used", std::to_string(result.wavesUsed)});
    table.addRow({"Adversarial VMs",
                  std::to_string(result.adversaryVmsUsed)});
    table.addRow({"Baseline latency",
                  util::AsciiTable::num(result.baselineLatencyMs, 2) +
                      " ms"});
    table.addRow({"Latency under attack",
                  util::AsciiTable::num(result.attackLatencyMs, 2) +
                      " ms"});
    table.addRow(
        {"Victim pinpointed", result.victimPinpointed ? "yes" : "no"});
    table.addRow({"Time", util::AsciiTable::num(
                              result.detectionTimeSec, 1) +
                              " s"});
    table.print(std::cout);
    return result.victimPinpointed ? 0 : 1;
}

void
usage()
{
    std::cout
        << "usage: bolt_cli <experiment|detect|dos|coresidency> "
           "[--flag value ...]\n"
           "  experiment  --servers N --victims N --seed S [--quasar]\n"
           "              --threads N (0 = hardware; any value gives\n"
           "              bit-identical results)\n"
           "              --platform baremetal|container|vm\n"
           "              --isolation none|pinning|net|mem|cache|"
           "core-full|core-only\n"
           "              --obfuscation A\n"
           "  detect      --family NAME --seed S\n"
           "  dos         --seed S\n"
           "  coresidency --probes N --waves N --seed S\n";
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    util::applyThreadsFlag(argc, argv);
    Args args(argc, argv, 2);
    std::string command = argv[1];
    if (command == "experiment")
        return runExperiment(args);
    if (command == "detect")
        return runDetect(args);
    if (command == "dos")
        return runDos(args);
    if (command == "coresidency")
        return runCoResidency(args);
    usage();
    return 2;
}

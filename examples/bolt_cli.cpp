/**
 * @file
 * Command-line driver for libbolt: run any of the library's scenarios
 * with configurable parameters without writing code.
 *
 *   bolt_cli run        --scenario FILE [--dump] [--threads N]
 *   bolt_cli experiment [--servers N] [--victims N] [--seed S]
 *                       [--threads N]
 *                       [--quasar] [--isolation none|pinning|net|mem|
 *                        cache|core-full|core-only]
 *                       [--platform baremetal|container|vm]
 *                       [--obfuscation A]
 *   bolt_cli detect     [--family NAME] [--seed S]
 *   bolt_cli dos        [--seed S]
 *   bolt_cli coresidency [--probes N] [--waves N] [--seed S]
 *   bolt_cli serve-bench [--requests N] [--qps Q] [--workers N]
 *                       [--queue-cap N] [--max-batch N] [--slo-ms MS]
 *                       [--closed-loop --clients N --think-ms MS] ...
 *   bolt_cli fleet      [--hosts N] [--tenants N] [--shards N]
 *                       [--epochs N] [--arrivals R] [--departures P]
 *                       [--migrations P] [--host-faults P] [--seed S]
 *   bolt_cli arms-race  [--servers N] [--probes N] [--waves N]
 *                       [--reps N] [--util-levels CSV] [--seed S]
 *   bolt_cli report     --telemetry FILE [--top N]
 *
 * Every subcommand also takes the shared observability flags:
 *   --metrics-out FILE  write a RunReport JSON (config + metrics)
 *   --trace-out FILE    write a sim-time trace (Chrome JSON; .jsonl
 *                       for flat JSONL)
 *   --telemetry-out FILE  windowed time-series + SLO alerts (JSONL;
 *                       `bolt_cli report` renders it)
 *   --telemetry-window SEC  telemetry window width (default 1)
 *   --log-level L       error|warn|info|debug (default warn)
 *
 * Every run is deterministic for a given seed; --threads only changes
 * wall-clock time, never results, and the observability flags never
 * change results either (scripts/check.sh --obs enforces both).
 *
 * Flag parsing is strict (util::CliArgs): unknown flags, stray
 * positionals, numeric values with trailing garbage ("10x") and
 * out-of-range values ("--threads 99999") all exit 2 with the valid
 * flags listed — a typo must fail loudly, not silently run a default.
 */
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "attacks/coresidency.h"
#include "attacks/dos.h"
#include "colo/tournament.h"
#include "core/experiment.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "serve/engine.h"
#include "sim/shard.h"
#include "util/cli_flags.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/generators.h"

using namespace bolt;
using util::CliArgs;
using util::CliFlagSpec;
using util::FlagKind;

namespace {

/** Effectively-unbounded upper limit for 64-bit seed flags. */
constexpr double kSeedMax = 9.3e18;

/**
 * Flags every subcommand accepts. --threads is range-checked here:
 * 0 means hardware concurrency, anything above 512 is a typo, not a
 * machine.
 */
const std::vector<CliFlagSpec> kCommonFlags = {
    {"threads", FlagKind::Int, 0, 512},
};

sim::Platform
parsePlatform(const std::string& name)
{
    if (name == "baremetal")
        return sim::Platform::Baremetal;
    if (name == "container")
        return sim::Platform::Container;
    return sim::Platform::VirtualMachine;
}

sim::IsolationConfig
parseIsolation(const std::string& name, sim::Platform platform)
{
    if (name == "pinning")
        return sim::IsolationConfig::withThreadPinning(platform);
    if (name == "net")
        return sim::IsolationConfig::withNetPartitioning(platform);
    if (name == "mem")
        return sim::IsolationConfig::withMemBwPartitioning(platform);
    if (name == "cache")
        return sim::IsolationConfig::withCachePartitioning(platform);
    if (name == "core-full")
        return sim::IsolationConfig::withCoreIsolation(platform);
    if (name == "core-only")
        return sim::IsolationConfig::coreIsolationOnly(platform);
    return sim::IsolationConfig::none(platform);
}

/** Wall-clock timer for the RunReport (observability only). */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

int
runExperiment(const CliArgs& args)
{
    core::ExperimentConfig cfg;
    cfg.servers = static_cast<size_t>(args.getInt("servers", 40));
    cfg.victims = static_cast<size_t>(args.getInt("victims", 108));
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 1));
    cfg.victimObfuscation = args.getDouble("obfuscation", 0.0);
    if (args.has("quasar"))
        cfg.policy = core::ExperimentConfig::Policy::Quasar;
    cfg.isolation = parseIsolation(
        args.get("isolation", "none"),
        parsePlatform(args.get("platform", "vm")));

    // Fault-injection plan: each --fault-<key> flag maps onto the plan
    // via src/fault's parser; a set of pure modifiers (seed, spike-mag)
    // with no rate enabled is rejected — it would silently do nothing.
    static const char* kFaultKeys[] = {
        "arrivals", "departures", "phase-flips",   "dropouts", "spikes",
        "spike-mag", "jitter",    "jitter-window", "seed"};
    bool any_fault_flag = false;
    std::string fault_err;
    for (const char* key : kFaultKeys) {
        std::string flag = std::string("fault-") + key;
        if (!args.has(flag))
            continue;
        any_fault_flag = true;
        if (!fault::applyFaultFlag(cfg.faults, key, args.get(flag, ""),
                                   &fault_err)) {
            std::cerr << "bolt_cli: " << fault_err << "\n";
            return 2;
        }
    }
    if (!fault::validateFaultFlags(cfg.faults, any_fault_flag,
                                   &fault_err)) {
        std::cerr << "bolt_cli: " << fault_err << "\n";
        return 2;
    }

    obs::RunReport report("experiment");
    report.set("servers", static_cast<uint64_t>(cfg.servers));
    report.set("victims", static_cast<uint64_t>(cfg.victims));
    report.set("seed", cfg.seed);
    report.set("policy", args.has("quasar") ? "quasar" : "least-loaded");
    report.set("platform", args.get("platform", "vm"));
    report.set("isolation", args.get("isolation", "none"));
    report.set("obfuscation", cfg.victimObfuscation);
    report.set("faults_enabled", cfg.faults.enabled());
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));

    WallTimer wall;
    auto result = core::ControlledExperiment(cfg).run();
    report.setWallSeconds(wall.seconds());

    auto& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
        report.setSimSeconds(
            metrics.snapshot()
                .histogram(obs::MetricId::kExperimentHostSimSec)
                .sum);
    }
    report.set("result_digest", hex64(result.digest()));
    obs::writeConfiguredOutputs(report);

    util::AsciiTable table({"Metric", "Value"});
    table.addRow({"Victims scheduled",
                  std::to_string(result.outcomes.size())});
    table.addRow({"Class accuracy", util::AsciiTable::percent(
                                        result.aggregateAccuracy(), 1)});
    table.addRow({"Characteristics accuracy",
                  util::AsciiTable::percent(
                      result.characteristicsAccuracy(), 1)});
    for (const auto& [n, acc] : result.accuracyByCoResidents())
        table.addRow({"Accuracy @ " + std::to_string(n) +
                          " co-resident(s)",
                      util::AsciiTable::percent(acc, 1)});
    if (cfg.faults.enabled())
        table.addRow({"Victims departed (churn)",
                      std::to_string(result.departedCount())});
    table.addRow({"Result digest", hex64(result.digest())});
    table.print(std::cout);
    return 0;
}

int
runDetect(const CliArgs& args)
{
    util::Rng rng(static_cast<uint64_t>(args.getInt("seed", 2017)));
    std::string family = args.get("family", "memcached");
    const auto* fam = workloads::findFamily(family);
    if (!fam) {
        std::cerr << "unknown family: " << family << "\n";
        return 2;
    }

    obs::RunReport report("detect");
    report.set("family", family);
    report.set("seed", static_cast<uint64_t>(args.getInt("seed", 2017)));
    WallTimer wall;

    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    sim::Cluster cluster(1);
    sim::Tenant adversary{cluster.nextTenantId(), 4, true};
    cluster.placeOn(0, adversary);
    util::Rng vr = rng.substream("victim");
    auto spec = workloads::randomSpec(*fam, vr);
    spec.pattern = workloads::LoadPattern::constant(0.9);
    sim::Tenant victim{cluster.nextTenantId(), spec.vcpus, false};
    cluster.placeOn(0, victim);
    workloads::AppInstance instance(spec, vr.substream("inst"));

    sim::ContentionModel contention(cluster.isolation());
    core::HostEnvironment env;
    env.server = &cluster.server(0);
    env.adversary = adversary.id;
    env.contention = &contention;
    env.pressureAt = [&](double t) {
        sim::PressureMap pm;
        pm[victim.id] = instance.pressureAt(t);
        return pm;
    };
    auto round = detector.detectOnce(env, 0.0, rng);

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(round.profilingSec);
    report.set("victim_class", spec.classLabel());
    report.set("top_match", round.topClass());
    report.set("correct", round.topClass() == spec.classLabel());
    obs::writeConfiguredOutputs(report);

    std::cout << "hidden victim: " << spec.classLabel() << "\n";
    if (round.guesses.empty()) {
        std::cout << "no confident match\n";
        return 1;
    }
    for (const auto& [label, share] :
         round.guesses.front().distribution) {
        std::cout << "  " << label << ": "
                  << util::AsciiTable::percent(share, 1) << "\n";
    }
    std::cout << "top match: " << round.topClass() << " ("
              << (round.topClass() == spec.classLabel() ? "correct"
                                                        : "incorrect")
              << ")\n";
    return 0;
}

int
runDos(const CliArgs& args)
{
    attacks::DosTimelineConfig cfg;
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 99));

    obs::RunReport report("dos");
    report.set("seed", cfg.seed);
    WallTimer wall;

    attacks::DosTimelineExperiment experiment(cfg);
    auto bolt_run = experiment.run(true);
    auto naive_run = experiment.run(false);

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(static_cast<double>(bolt_run.size() +
                                             naive_run.size()));
    obs::writeConfiguredOutputs(report);

    double nominal = bolt_run[5].p99Ms;
    util::AsciiTable table(
        {"t", "Bolt p99 x", "Bolt util", "Naive p99 x", "Naive util"});
    for (size_t t = 0; t < bolt_run.size(); t += 15) {
        table.addRow(
            {std::to_string(t),
             util::AsciiTable::num(bolt_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(bolt_run[t].cpuUtil, 0) + "%",
             util::AsciiTable::num(naive_run[t].p99Ms / nominal, 1),
             util::AsciiTable::num(naive_run[t].cpuUtil, 0) + "%"});
    }
    table.print(std::cout);
    return 0;
}

int
runCoResidency(const CliArgs& args)
{
    attacks::CoResidencyConfig cfg;
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 7));
    cfg.probeVms = static_cast<size_t>(args.getInt("probes", 10));
    cfg.maxWaves = static_cast<size_t>(args.getInt("waves", 8));

    obs::RunReport report("coresidency");
    report.set("seed", cfg.seed);
    report.set("probes", static_cast<uint64_t>(cfg.probeVms));
    report.set("waves", static_cast<uint64_t>(cfg.maxWaves));
    WallTimer wall;

    auto result = attacks::CoResidencyAttack(cfg).run();

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(result.detectionTimeSec);
    report.set("victim_pinpointed", result.victimPinpointed);
    obs::writeConfiguredOutputs(report);

    util::AsciiTable table({"Metric", "Value"});
    table.addRow({"P(probe lands)",
                  util::AsciiTable::num(result.placementProbability, 3)});
    table.addRow({"Waves used", std::to_string(result.wavesUsed)});
    table.addRow({"Adversarial VMs",
                  std::to_string(result.adversaryVmsUsed)});
    table.addRow({"Baseline latency",
                  util::AsciiTable::num(result.baselineLatencyMs, 2) +
                      " ms"});
    table.addRow({"Latency under attack",
                  util::AsciiTable::num(result.attackLatencyMs, 2) +
                      " ms"});
    table.addRow(
        {"Victim pinpointed", result.victimPinpointed ? "yes" : "no"});
    table.addRow({"Time", util::AsciiTable::num(
                              result.detectionTimeSec, 1) +
                              " s"});
    table.print(std::cout);
    return result.victimPinpointed ? 0 : 1;
}

int
runServeBench(const CliArgs& args)
{
    serve::ServeConfig cfg;
    cfg.workers = static_cast<size_t>(args.getInt("workers", 4));
    cfg.queueCapacity =
        static_cast<size_t>(args.getInt("queue-cap", 128));
    cfg.maxBatch = static_cast<size_t>(args.getInt("max-batch", 8));
    cfg.batchSetupMs = args.getDouble("batch-setup-ms", 2.0);
    cfg.batchWaitMs = args.getDouble("batch-wait-ms", 0.0);
    cfg.batchMarginalCost =
        args.getDouble("batch-marginal-cost", 1.0);
    cfg.admitSloCheck = !args.has("no-admit-check");
    cfg.load.requests =
        static_cast<size_t>(args.getInt("requests", 2000));
    cfg.load.offeredQps = args.getDouble("qps", 1000.0);
    cfg.load.closedLoop = args.has("closed-loop");
    cfg.load.clients = static_cast<size_t>(args.getInt("clients", 16));
    cfg.load.thinkMs = args.getDouble("think-ms", 4.0);
    cfg.load.sloMs = args.getDouble("slo-ms", 50.0);
    cfg.load.decomposeFraction = args.getDouble("decompose-frac", 0.0);
    cfg.load.seed = static_cast<uint64_t>(args.getInt("seed", 1));

    obs::RunReport report("serve-bench");
    report.set("requests", static_cast<uint64_t>(cfg.load.requests));
    report.set("qps", cfg.load.offeredQps);
    report.set("closed_loop", cfg.load.closedLoop);
    report.set("workers", static_cast<uint64_t>(cfg.workers));
    report.set("queue_cap", static_cast<uint64_t>(cfg.queueCapacity));
    report.set("max_batch", static_cast<uint64_t>(cfg.maxBatch));
    report.set("batch_marginal_cost", cfg.batchMarginalCost);
    report.set("slo_ms", cfg.load.sloMs);
    report.set("seed", cfg.load.seed);
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));
    WallTimer wall;

    // Training corpus and recommender, derived from the run seed the
    // same way the detect subcommand builds them.
    util::Rng rng(cfg.load.seed);
    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);

    serve::ServeEngine engine(recommender, cfg);
    auto result = engine.run();
    const serve::ServeStats& st = result.stats;

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(st.makespanMs / 1000.0);
    report.set("result_digest", hex64(result.digest()));
    obs::writeConfiguredOutputs(report);

    // Every value below is Sim-class: byte-identical at any --threads.
    util::AsciiTable table({"Metric", "Value"});
    auto count = [](uint64_t v) { return std::to_string(v); };
    table.addRow({"Requests offered", count(st.offered)});
    table.addRow({"Admitted", count(st.admitted)});
    table.addRow({"Rejected (queue full)", count(st.rejectedQueueFull)});
    table.addRow(
        {"Rejected (SLO infeasible)", count(st.rejectedSloInfeasible)});
    table.addRow({"Shed (deadline expired)", count(st.shedDeadline)});
    table.addRow({"Completed", count(st.completed)});
    table.addRow({"SLO misses (late)", count(st.sloMisses)});
    table.addRow({"Batches", count(st.batches)});
    table.addRow({"Batch deferrals", count(st.batchDeferrals)});
    table.addRow({"Mean batch size",
                  util::AsciiTable::num(st.batchSizes.mean(), 2)});
    table.addRow({"Queue depth peak", count(st.queueDepthPeak)});
    table.addRow({"Makespan (sim)",
                  util::AsciiTable::num(st.makespanMs, 1) + " ms"});
    table.addRow({"Achieved QPS",
                  util::AsciiTable::num(st.achievedQps, 1)});
    table.addRow({"Goodput QPS",
                  util::AsciiTable::num(st.goodputQps, 1)});
    table.addRow({"Latency p50",
                  util::AsciiTable::num(st.latencyMs.percentile(50), 2) +
                      " ms"});
    table.addRow({"Latency p95",
                  util::AsciiTable::num(st.latencyMs.percentile(95), 2) +
                      " ms"});
    table.addRow({"Latency p99",
                  util::AsciiTable::num(st.latencyMs.percentile(99), 2) +
                      " ms"});
    table.addRow({"Result digest", hex64(result.digest())});
    table.print(std::cout);
    return 0;
}

int
runFleet(const CliArgs& args)
{
    sim::FleetConfig cfg;
    cfg.hosts = static_cast<size_t>(args.getInt("hosts", 64));
    cfg.tenants = static_cast<size_t>(args.getInt("tenants", 256));
    cfg.shards = static_cast<size_t>(args.getInt("shards", 1));
    cfg.epochs = args.getInt("epochs", 4);
    cfg.arrivalsPerHostEpoch = args.getDouble("arrivals", 0.2);
    cfg.departureProb = args.getDouble("departures", 0.04);
    cfg.migrationProb = args.getDouble("migrations", 0.02);
    cfg.hostFaultProb = args.getDouble("host-faults", 0.0);
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 42));

    obs::RunReport report("fleet");
    report.set("hosts", static_cast<uint64_t>(cfg.hosts));
    report.set("tenants", static_cast<uint64_t>(cfg.tenants));
    report.set("shards", static_cast<uint64_t>(cfg.shards));
    report.set("epochs", static_cast<uint64_t>(cfg.epochs));
    report.set("arrivals", cfg.arrivalsPerHostEpoch);
    report.set("departures", cfg.departureProb);
    report.set("migrations", cfg.migrationProb);
    report.set("host_faults", cfg.hostFaultProb);
    report.set("seed", cfg.seed);
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));
    WallTimer wall;

    auto result = sim::FleetCluster(cfg).run();

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(result.simSeconds);
    report.set("vms_alive", result.vmsAlive);
    report.set("result_digest", hex64(result.digest));
    obs::writeConfiguredOutputs(report);

    if (!result.consistent) {
        std::cerr << "bolt_cli: fleet inconsistency: "
                  << result.inconsistency << "\n";
        return 1;
    }

    // Every value below is Sim-class: byte-identical at any --threads
    // and any --shards (the one shard-dependent statistic, cross-shard
    // migrations, is reported but never folded into the digest).
    util::AsciiTable epochs({"Epoch", "Alive", "Arrive", "Depart", "Migrate",
                             "Faults", "Util", "Anomaly"});
    for (size_t e = 0; e < result.epochs.size(); ++e) {
        const sim::FleetEpoch& ep = result.epochs[e];
        epochs.addRow({std::to_string(e), std::to_string(ep.alive),
                       std::to_string(ep.arrivals),
                       std::to_string(ep.departures),
                       std::to_string(ep.migrations),
                       std::to_string(ep.hostFaults),
                       util::AsciiTable::num(ep.meanUtil, 1) + "%",
                       util::AsciiTable::percent(ep.anomalyRate, 1)});
    }
    epochs.print(std::cout);

    util::AsciiTable table({"Metric", "Value"});
    auto count = [](uint64_t v) { return std::to_string(v); };
    table.addRow({"Hosts", count(cfg.hosts)});
    table.addRow({"Shards", count(cfg.shards)});
    table.addRow({"VMs booted", count(result.vmsBooted)});
    table.addRow({"VMs alive", count(result.vmsAlive)});
    table.addRow({"Arrivals", count(result.arrivals)});
    table.addRow({"Departures", count(result.departures)});
    table.addRow({"Migrations", count(result.migrations)});
    table.addRow({"Cross-shard migrations",
                  count(result.crossShardMigrations)});
    table.addRow({"Host faults", count(result.hostFaults)});
    table.addRow({"Placement failures", count(result.placementFailures)});
    table.addRow({"Sim time", util::AsciiTable::num(result.simSeconds, 0) +
                                  " s"});
    table.addRow({"Result digest", hex64(result.digest)});
    table.print(std::cout);
    return 0;
}

int
runArmsRace(const CliArgs& args)
{
    colo::TournamentConfig cfg;
    cfg.servers = static_cast<size_t>(args.getInt("servers", 24));
    cfg.probesPerWave = args.getInt("probes", 4);
    cfg.waves = args.getInt("waves", 3);
    cfg.reps = args.getInt("reps", 8);
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 42));

    // --util-levels is a CSV of utilization percents; the parser keeps
    // it a string, so range-check each entry here (same strictness as
    // the numeric flags: garbage exits 2).
    std::string levels = args.get("util-levels", "");
    if (!levels.empty()) {
        cfg.utilLevels.clear();
        std::istringstream is(levels);
        std::string item;
        while (std::getline(is, item, ',')) {
            size_t pos = 0;
            double v = 0.0;
            try {
                v = std::stod(item, &pos);
            } catch (const std::exception&) {
                pos = 0;
            }
            if (pos != item.size() || v < 5.0 || v > 90.0) {
                std::cerr << "bolt_cli: --util-levels entry '" << item
                          << "' is not a percent in [5, 90]\n";
                return 2;
            }
            cfg.utilLevels.push_back(v);
        }
        if (cfg.utilLevels.empty()) {
            std::cerr << "bolt_cli: --util-levels is empty\n";
            return 2;
        }
    }

    obs::RunReport report("arms-race");
    report.set("servers", static_cast<uint64_t>(cfg.servers));
    report.set("probes", static_cast<uint64_t>(cfg.probesPerWave));
    report.set("waves", static_cast<uint64_t>(cfg.waves));
    report.set("reps", static_cast<uint64_t>(cfg.reps));
    report.set("seed", cfg.seed);
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));
    WallTimer wall;

    colo::TournamentResult result = colo::runTournament(cfg);

    report.setWallSeconds(wall.seconds());
    report.set("cells", static_cast<uint64_t>(result.cells.size()));
    report.set("result_digest", hex64(result.digest));
    obs::writeConfiguredOutputs(report);

    // Everything below is Sim-class: byte-identical at any --threads.
    colo::printTournament(result, std::cout);
    std::cout << "tournament digest: " << hex64(result.digest) << "\n";

    std::string violation = colo::tournamentSelfCheck(cfg, result);
    if (!violation.empty()) {
        std::cerr << "bolt_cli: arms-race gate: " << violation << "\n";
        return 1;
    }
    std::cout << "arms-race gates: OK\n";
    return 0;
}

int
runScenarioCmd(const CliArgs& args)
{
    std::string path = args.get("scenario", "");
    if (path.empty()) {
        std::cerr << "bolt_cli: run requires --scenario <file>\n";
        return 2;
    }

    scenario::Scenario s;
    std::string err;
    if (!scenario::compileFile(path, &s, &err)) {
        std::cerr << "bolt_cli: " << err << "\n";
        return 2;
    }

    if (args.has("dump")) {
        // Canonical serialization: every key explicit, recompiles to an
        // identical graph (the round-trip the tests pin).
        std::cout << s.dump();
        return 0;
    }

    obs::RunReport report("run");
    report.set("scenario", s.name);
    report.set("file", path);
    report.set("seed", s.seed);
    report.set("stages", static_cast<uint64_t>(s.stages.size()));
    report.set("graph_digest", hex64(s.graphDigest()));
    report.set("threads",
               static_cast<uint64_t>(util::ThreadPool::globalThreads()));
    WallTimer wall;

    auto result = scenario::runScenario(s, std::cout);

    report.setWallSeconds(wall.seconds());
    report.setSimSeconds(result.simSeconds);
    report.set("stages_run", static_cast<uint64_t>(result.stagesRun));
    report.set("run_digest", hex64(result.digest));
    if (result.expectsTotal > 0)
        report.set("expect_failures",
                   static_cast<uint64_t>(result.expectFailures.size()));
    obs::writeConfiguredOutputs(report);
    if (!result.ok()) {
        for (const std::string& f : result.expectFailures)
            std::cerr << "bolt_cli: " << f << "\n";
        return 3;
    }
    return 0;
}

// ------------------------------------------------------------------
// `bolt_cli report`: post-run analyzer over a --telemetry-out JSONL
// dump. Everything below derives purely from the file, so the report
// for a given dump is byte-identical wherever it is rendered.

/** One parsed telemetry point line. */
struct ReportPoint
{
    std::string series;
    std::string label;
    int64_t window = 0;
    uint64_t count = 0;
    double mean = 0.0;
    double p99 = 0.0;
    bool sample = false; ///< Line carried sum/mean/percentiles.
};

/** One parsed alert line. */
struct ReportAlert
{
    std::string rule;
    bool firing = false;
    int64_t window = 0;
    double t = 0.0;
    double value = 0.0;
    int epoch = 1;
};

/**
 * Extract one field from a flat telemetry JSONL object. Good for
 * exactly the format writeTelemetryJsonl/writeAlertsJsonl emit (no
 * nesting, no escaped quotes in values).
 */
bool
jsonField(const std::string& line, const std::string& key,
          std::string* out)
{
    std::string needle = "\"" + key + "\":";
    size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    if (pos < line.size() && line[pos] == '"') {
        size_t end = line.find('"', pos + 1);
        if (end == std::string::npos)
            return false;
        *out = line.substr(pos + 1, end - pos - 1);
        return true;
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    *out = line.substr(pos, end - pos);
    return true;
}

double
jsonNumField(const std::string& line, const std::string& key,
             double fallback)
{
    std::string raw;
    if (!jsonField(line, key, &raw) || raw == "null")
        return fallback;
    try {
        return std::stod(raw);
    } catch (...) {
        return fallback;
    }
}

/** Render values as a fixed-ramp ASCII sparkline over `cols` columns. */
std::string
sparkline(const std::vector<double>& byWindow, int64_t wMin,
          int64_t wMax, size_t cols)
{
    static const char kRamp[] = " .:-=+*#%@";
    const size_t levels = sizeof kRamp - 2; // Index of the top glyph.
    int64_t span = wMax - wMin + 1;
    if (span <= 0 || byWindow.empty())
        return "";
    cols = std::min<size_t>(cols, static_cast<size_t>(span));
    std::vector<double> col(cols, 0.0);
    std::vector<uint64_t> n(cols, 0);
    for (int64_t w = 0; w < span; ++w) {
        if (static_cast<size_t>(w) >= byWindow.size())
            break;
        size_t c = static_cast<size_t>(
            (static_cast<uint64_t>(w) * cols) /
            static_cast<uint64_t>(span));
        col[c] += byWindow[static_cast<size_t>(w)];
        ++n[c];
    }
    double peak = 0.0;
    for (size_t c = 0; c < cols; ++c) {
        if (n[c])
            col[c] /= static_cast<double>(n[c]);
        peak = std::max(peak, col[c]);
    }
    std::string out(cols, ' ');
    for (size_t c = 0; c < cols; ++c) {
        if (peak <= 0.0 || col[c] <= 0.0)
            continue;
        size_t lvl = 1 + static_cast<size_t>((col[c] / peak) *
                                             static_cast<double>(levels - 1));
        out[c] = kRamp[std::min(lvl, levels)];
    }
    return out;
}

int
runReport(const CliArgs& args)
{
    std::string path = args.get("telemetry", "");
    if (path.empty()) {
        std::cerr << "bolt_cli: report requires --telemetry <file> (a "
                     "--telemetry-out dump)\n";
        return 2;
    }
    std::ifstream in(path);
    if (!in) {
        std::cerr << "bolt_cli: cannot open '" << path << "'\n";
        return 2;
    }
    std::string line;
    if (!std::getline(in, line) ||
        line.find("\"bolt_telemetry\"") == std::string::npos) {
        std::cerr << "bolt_cli: '" << path
                  << "' is not a bolt telemetry dump (missing "
                     "bolt_telemetry header)\n";
        return 2;
    }
    double window_sec = jsonNumField(line, "window_sec", 1.0);
    uint64_t dropped = static_cast<uint64_t>(
        jsonNumField(line, "series_dropped", 0.0));

    std::vector<ReportPoint> points;
    std::vector<ReportAlert> alerts;
    int lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string s;
        if (jsonField(line, "alert", &s)) {
            ReportAlert a;
            a.rule = s;
            jsonField(line, "state", &s);
            a.firing = s == "firing";
            a.window = static_cast<int64_t>(
                jsonNumField(line, "window", 0.0));
            a.t = jsonNumField(line, "t", 0.0);
            a.value = jsonNumField(line, "value", 0.0);
            a.epoch =
                static_cast<int>(jsonNumField(line, "epoch", 1.0));
            alerts.push_back(std::move(a));
        } else if (jsonField(line, "series", &s)) {
            ReportPoint p;
            p.series = s;
            jsonField(line, "label", &p.label);
            p.window = static_cast<int64_t>(
                jsonNumField(line, "window", 0.0));
            p.count = static_cast<uint64_t>(
                jsonNumField(line, "count", 0.0));
            std::string raw;
            p.sample = jsonField(line, "mean", &raw);
            p.mean = jsonNumField(line, "mean", 0.0);
            p.p99 = jsonNumField(line, "p99", 0.0);
            points.push_back(std::move(p));
        } else {
            std::cerr << "bolt_cli: " << path << ":" << lineno
                      << ": unrecognized telemetry line\n";
            return 2;
        }
    }

    int64_t wMin = 0, wMax = 0;
    bool haveW = false;
    for (const ReportPoint& p : points) {
        wMin = haveW ? std::min(wMin, p.window) : p.window;
        wMax = haveW ? std::max(wMax, p.window) : p.window;
        haveW = true;
    }

    // Group by (series, label), insertion order = export order.
    std::vector<std::pair<std::string, std::vector<size_t>>> groups;
    for (size_t i = 0; i < points.size(); ++i) {
        std::string key = points[i].series;
        if (!points[i].label.empty())
            key += "[" + points[i].label + "]";
        if (groups.empty() || groups.back().first != key)
            groups.emplace_back(key, std::vector<size_t>{});
        groups.back().second.push_back(i);
    }

    std::cout << "telemetry report: " << path << "\n"
              << "windows " << wMin << ".." << wMax << " ("
              << util::AsciiTable::num(window_sec, window_sec < 1 ? 3 : 0)
              << "s each), " << groups.size() << " series, "
              << points.size() << " points, " << alerts.size()
              << " alert events, dropped=" << dropped << "\n\n";

    // Per-series sparkline table: counts for counter series, per-window
    // means for sample series.
    util::AsciiTable table({"Series", "Windows", "Total", "Mean", "Spark"});
    for (const auto& [key, idx] : groups) {
        uint64_t total = 0;
        double weighted = 0.0;
        bool sample = false;
        std::vector<double> byWindow(
            static_cast<size_t>(wMax - wMin + 1), 0.0);
        for (size_t i : idx) {
            const ReportPoint& p = points[i];
            total += p.count;
            weighted += p.mean * static_cast<double>(p.count);
            sample = sample || p.sample;
            byWindow[static_cast<size_t>(p.window - wMin)] =
                sample ? p.mean : static_cast<double>(p.count);
        }
        double mean =
            total ? weighted / static_cast<double>(total) : 0.0;
        table.addRow({key, std::to_string(idx.size()),
                      std::to_string(total),
                      sample ? util::AsciiTable::num(mean, 2) : "-",
                      sparkline(byWindow, wMin, wMax, 48)});
    }
    table.print(std::cout);

    // SLO-violation timeline.
    std::cout << "\nslo alerts:";
    if (alerts.empty()) {
        std::cout << " none\n";
    } else {
        std::cout << "\n";
        for (const ReportAlert& a : alerts) {
            std::cout << "  " << (a.firing ? "fired   " : "resolved")
                      << " " << a.rule << "  window " << a.window
                      << " (t=" << util::AsciiTable::num(a.t, 0)
                      << "s) value="
                      << util::AsciiTable::num(a.value, 2);
            if (a.epoch > 1)
                std::cout << " epoch=" << a.epoch;
            std::cout << "\n";
        }
    }

    // Queue/batch occupancy profile.
    bool any_occ = false;
    for (const auto& [key, idx] : groups) {
        const std::string& series = points[idx.front()].series;
        if (series != "serve.queue_depth" &&
            series != "serve.batch_size")
            continue;
        if (!any_occ)
            std::cout << "\noccupancy:\n";
        any_occ = true;
        uint64_t total = 0;
        double weighted = 0.0, peak = 0.0, p99 = 0.0;
        for (size_t i : idx) {
            const ReportPoint& p = points[i];
            total += p.count;
            weighted += p.mean * static_cast<double>(p.count);
            peak = std::max(peak, p.mean);
            p99 = std::max(p99, p.p99);
        }
        std::cout << "  " << key << ": samples=" << total << " mean="
                  << util::AsciiTable::num(
                         total ? weighted / static_cast<double>(total)
                               : 0.0,
                         2)
                  << " peak-window-mean="
                  << util::AsciiTable::num(peak, 2)
                  << " max-p99=" << util::AsciiTable::num(p99, 2)
                  << "\n";
    }

    // Top-k tenant attribution per firing alert window range.
    int top = args.getInt("top", 5);
    for (size_t a = 0; a < alerts.size(); ++a) {
        if (!alerts[a].firing)
            continue;
        int64_t wStart = alerts[a].window;
        int64_t wEnd = wMax;
        for (size_t b = a + 1; b < alerts.size(); ++b) {
            if (alerts[b].rule == alerts[a].rule && !alerts[b].firing) {
                wEnd = alerts[b].window;
                break;
            }
        }
        std::vector<std::pair<std::string, uint64_t>> tenants;
        for (const ReportPoint& p : points) {
            if (p.series != "serve.tenant_requests" ||
                p.window < wStart || p.window > wEnd)
                continue;
            bool found = false;
            for (auto& [label, n] : tenants) {
                if (label == p.label) {
                    n += p.count;
                    found = true;
                }
            }
            if (!found)
                tenants.emplace_back(p.label, p.count);
        }
        if (tenants.empty())
            continue;
        std::stable_sort(tenants.begin(), tenants.end(),
                         [](const auto& x, const auto& y) {
                             return x.second > y.second;
                         });
        std::cout << "\nattribution for " << alerts[a].rule
                  << " (windows " << wStart << ".." << wEnd << ", top "
                  << top << " by serve.tenant_requests):\n";
        for (size_t i = 0;
             i < tenants.size() && i < static_cast<size_t>(top); ++i) {
            std::cout << "  " << tenants[i].first << ": "
                      << tenants[i].second << "\n";
        }
    }
    return 0;
}

void
usage()
{
    std::cout
        << "usage: bolt_cli <run|experiment|detect|dos|coresidency|"
           "serve-bench|fleet|arms-race|report> [--flag value ...]\n"
           "  run         --scenario FILE (declarative scenario; see\n"
           "              docs/SCENARIOS.md and scenarios/)\n"
           "              --dump (print the canonical form, don't run)\n"
           "              exit 3 when an `expect:` item fails\n"
           "  experiment  --servers N --victims N --seed S [--quasar]\n"
           "              --threads N (0 = hardware; any value gives\n"
           "              bit-identical results)\n"
           "              --platform baremetal|container|vm\n"
           "              --isolation none|pinning|net|mem|cache|"
           "core-full|core-only\n"
           "              --obfuscation A\n"
           "              --fault-arrivals P --fault-departures P\n"
           "              --fault-phase-flips P --fault-dropouts P\n"
           "              --fault-spikes P --fault-spike-mag M\n"
           "              --fault-jitter A --fault-jitter-window SEC\n"
           "              --fault-seed S (deterministic fault "
           "injection;\n"
           "              at least one rate must be nonzero)\n"
           "  detect      --family NAME --seed S\n"
           "  dos         --seed S\n"
           "  coresidency --probes N --waves N --seed S\n"
           "  serve-bench --requests N --qps Q --workers N "
           "--queue-cap N\n"
           "              --max-batch N --batch-setup-ms MS "
           "--batch-wait-ms MS\n"
           "              --batch-marginal-cost F (cost of batch\n"
           "              followers relative to the first request;\n"
           "              1 = classic linear-additive model)\n"
           "              --slo-ms MS --decompose-frac F --seed S\n"
           "              --no-admit-check (disable SLO admission "
           "control)\n"
           "              --closed-loop --clients N --think-ms MS\n"
           "  fleet       --hosts N --tenants N --shards N --epochs N\n"
           "              --arrivals R (mean VM arrivals per host per "
           "epoch)\n"
           "              --departures P --migrations P --host-faults P\n"
           "              --seed S (digest is byte-identical at any\n"
           "              --shards x --threads; only the cross-shard\n"
           "              migration statistic depends on --shards)\n"
           "  arms-race   --servers N --probes N --waves N --reps N\n"
           "              --util-levels CSV (percents in [5,90], "
           "default 30,50,70)\n"
           "              --seed S (co-location tournament: every\n"
           "              attacker x policy x utilization cell; exits "
           "1\n"
           "              when a defense fails the arms-race gates)\n"
           "  report      --telemetry FILE (a --telemetry-out dump)\n"
           "              --top N (tenants per alert attribution, "
           "default 5)\n"
           "observability (any subcommand):\n"
           "  --metrics-out FILE  RunReport JSON: config + metrics "
           "snapshot\n"
           "  --trace-out FILE    sim-time trace (Chrome JSON; .jsonl "
           "= JSONL)\n"
           "  --telemetry-out FILE  windowed time-series + alerts "
           "(JSONL)\n"
           "  --telemetry-window SEC  window width (default 1)\n"
           "  --log-level L       error|warn|info|debug (default "
           "warn)\n"
           "unknown flags are rejected\n";
}

const std::vector<CliFlagSpec> kExperimentFlags = {
    {"servers", FlagKind::Int, 1, 100000},
    {"victims", FlagKind::Int, 0, 1000000},
    {"seed", FlagKind::UInt, 0, kSeedMax},
    {"quasar", FlagKind::Flag},
    {"platform", FlagKind::String},
    {"isolation", FlagKind::String},
    {"obfuscation", FlagKind::Double, 0.0, 100.0},
    // Fault values stay strings: src/fault's parser owns their
    // validation (rates in [0,1], windows > 0, ...).
    {"fault-arrivals", FlagKind::String},
    {"fault-departures", FlagKind::String},
    {"fault-phase-flips", FlagKind::String},
    {"fault-dropouts", FlagKind::String},
    {"fault-spikes", FlagKind::String},
    {"fault-spike-mag", FlagKind::String},
    {"fault-jitter", FlagKind::String},
    {"fault-jitter-window", FlagKind::String},
    {"fault-seed", FlagKind::String},
};
const std::vector<CliFlagSpec> kDetectFlags = {
    {"family", FlagKind::String},
    {"seed", FlagKind::UInt, 0, kSeedMax},
};
const std::vector<CliFlagSpec> kDosFlags = {
    {"seed", FlagKind::UInt, 0, kSeedMax},
};
const std::vector<CliFlagSpec> kCoResidencyFlags = {
    {"probes", FlagKind::Int, 1, 10000},
    {"waves", FlagKind::Int, 1, 1000},
    {"seed", FlagKind::UInt, 0, kSeedMax},
};
const std::vector<CliFlagSpec> kRunFlags = {
    {"scenario", FlagKind::String},
    {"dump", FlagKind::Flag},
};
const std::vector<CliFlagSpec> kArmsRaceFlags = {
    {"servers", FlagKind::Int, 4, 4096},
    {"probes", FlagKind::Int, 1, 64},
    {"waves", FlagKind::Int, 1, 64},
    {"reps", FlagKind::Int, 1, 64},
    // CSV of utilization percents; runArmsRace range-checks entries.
    {"util-levels", FlagKind::String},
    {"seed", FlagKind::UInt, 0, kSeedMax},
};
const std::vector<CliFlagSpec> kFleetFlags = {
    {"hosts", FlagKind::Int, 1, 1000000},
    {"tenants", FlagKind::Int, 0, 10000000},
    {"shards", FlagKind::Int, 1, 4096},
    {"epochs", FlagKind::Int, 1, 10000},
    {"arrivals", FlagKind::Double, 0.0, 100.0},
    {"departures", FlagKind::Double, 0.0, 1.0},
    {"migrations", FlagKind::Double, 0.0, 1.0},
    {"host-faults", FlagKind::Double, 0.0, 1.0},
    {"seed", FlagKind::UInt, 0, kSeedMax},
};
const std::vector<CliFlagSpec> kReportFlags = {
    {"telemetry", FlagKind::String},
    {"top", FlagKind::Int, 1, 1000},
};
const std::vector<CliFlagSpec> kServeBenchFlags = {
    {"requests", FlagKind::Int, 1, 10000000},
    {"qps", FlagKind::Double, 1e-6, 1e9},
    {"workers", FlagKind::Int, 1, 256},
    {"queue-cap", FlagKind::Int, 1, 1000000},
    {"max-batch", FlagKind::Int, 1, 64},
    {"batch-setup-ms", FlagKind::Double, 0.0, 1000.0},
    {"batch-wait-ms", FlagKind::Double, 0.0, 1000.0},
    {"batch-marginal-cost", FlagKind::Double, 0.0, 1.0},
    {"slo-ms", FlagKind::Double, 0.001, 1e6},
    {"decompose-frac", FlagKind::Double, 0.0, 1.0},
    {"seed", FlagKind::UInt, 0, kSeedMax},
    {"closed-loop", FlagKind::Flag},
    {"clients", FlagKind::Int, 1, 100000},
    {"think-ms", FlagKind::Double, 0.0, 1e6},
    {"no-admit-check", FlagKind::Flag},
};

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    // Consumes --metrics-out/--trace-out/--log-level and enables the
    // subsystems; must run before the strict parser below sees argv.
    if (!obs::applyObsFlags(argc, argv))
        return 2;

    std::string command = argv[1];
    const std::vector<CliFlagSpec>* spec = nullptr;
    int (*run)(const CliArgs&) = nullptr;
    if (command == "run") {
        spec = &kRunFlags;
        run = runScenarioCmd;
    } else if (command == "experiment") {
        spec = &kExperimentFlags;
        run = runExperiment;
    } else if (command == "detect") {
        spec = &kDetectFlags;
        run = runDetect;
    } else if (command == "dos") {
        spec = &kDosFlags;
        run = runDos;
    } else if (command == "coresidency") {
        spec = &kCoResidencyFlags;
        run = runCoResidency;
    } else if (command == "serve-bench") {
        spec = &kServeBenchFlags;
        run = runServeBench;
    } else if (command == "fleet") {
        spec = &kFleetFlags;
        run = runFleet;
    } else if (command == "arms-race") {
        spec = &kArmsRaceFlags;
        run = runArmsRace;
    } else if (command == "report") {
        spec = &kReportFlags;
        run = runReport;
    } else {
        std::cerr << "bolt_cli: unknown command '" << command << "'\n";
        usage();
        return 2;
    }

    CliArgs args;
    std::string err;
    if (!args.parse(argc, argv, 2, *spec, kCommonFlags, &err)) {
        std::cerr << "bolt_cli: " << err;
        return 2;
    }
    // --threads was validated by the parser ([0, 512]; 0 = hardware).
    // The lenient applyThreadsFlag stays for the bench drivers; the CLI
    // goes through the strict path.
    util::ThreadPool::setGlobalThreads(
        static_cast<unsigned>(args.getInt("threads", 0)));
    return run(args);
}

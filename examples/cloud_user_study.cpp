/**
 * @file
 * Domain scenario: a miniature EC2-style multi-user study (Section 4).
 * Twenty synthetic users submit jobs from the 53-family catalog; Bolt
 * runs on each instance and reports what it can label versus what it
 * can only characterize. This is the workflow a security auditor would
 * run to estimate how much a co-resident adversary can learn.
 */
#include <iostream>
#include <map>

#include "core/detector.h"
#include "core/experiment.h"
#include "sim/cluster.h"
#include "util/table.h"
#include "workloads/generators.h"

using namespace bolt;

int
main()
{
    util::Rng rng(808);

    util::Rng train_rng = rng.substream("training");
    auto train_specs = workloads::trainingSet(train_rng);
    auto training = core::TrainingSet::fromSpecs(train_specs, train_rng);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    // A reduced study: 60 jobs over 24 instances keeps the example
    // snappy; the fig12 benchmark runs the full 436-job version.
    util::Rng job_rng = rng.substream("jobs");
    auto jobs = workloads::userStudy(job_rng, 60, 20, 3600.0);

    sim::ContentionModel contention{
        sim::IsolationConfig::none(sim::Platform::VirtualMachine)};
    util::Rng detect_rng = rng.substream("detect");

    size_t labeled = 0, characterized = 0, unseen_type = 0;
    std::map<std::string, int> label_hits;

    // One instance per up-to-3 jobs, detection at each job's midpoint.
    for (size_t base = 0; base < jobs.size(); base += 3) {
        sim::Cluster host(1, 16, 2);
        sim::Tenant bolt_vm{host.nextTenantId(), 4, true};
        host.placeOn(0, bolt_vm);

        std::map<sim::TenantId, size_t> ids;
        std::map<sim::TenantId, workloads::AppInstance> instances;
        for (size_t j = base; j < std::min(base + 3, jobs.size()); ++j) {
            sim::Tenant t{host.nextTenantId(), jobs[j].spec.vcpus,
                          false};
            if (!host.placeOn(0, t))
                continue;
            ids[t.id] = j;
            instances.emplace(
                t.id, workloads::AppInstance(
                          jobs[j].spec, detect_rng.substream("a", j)));
        }

        core::HostEnvironment env;
        env.server = &host.server(0);
        env.adversary = bolt_vm.id;
        env.contention = &contention;
        env.pressureAt = [&](double t) {
            sim::PressureMap pm;
            for (auto& [id, j] : ids)
                pm[id] = instances.at(id).pressureAt(t);
            return pm;
        };

        auto round = detector.detectOnce(env, 100.0, detect_rng);
        for (const auto& [id, j] : ids) {
            const auto& spec = jobs[j].spec;
            if (!spec.labeledInTraining)
                ++unseen_type;
            if (spec.labeledInTraining &&
                core::roundMatchesClass(round, spec)) {
                ++labeled;
                ++label_hits[spec.family];
            }
            if (core::roundMatchesCharacteristics(round, spec))
                ++characterized;
        }
    }

    std::cout << "== Mini user study: " << jobs.size()
              << " jobs from 20 users ==\n";
    util::AsciiTable table({"Metric", "Jobs"});
    table.addRow({"Submitted", std::to_string(jobs.size())});
    table.addRow({"Outside Bolt's training space",
                  std::to_string(unseen_type)});
    table.addRow({"Correctly labeled by name", std::to_string(labeled)});
    table.addRow({"Resource characteristics recovered",
                  std::to_string(characterized)});
    table.print(std::cout);

    std::cout << "\nLabeled families:";
    for (const auto& [family, hits] : label_hits)
        std::cout << " " << family << "(" << hits << ")";
    std::cout << "\nEven unlabeled jobs leak their resource "
                 "characteristics - enough to drive the Section 5 "
                 "attacks.\n";
    return 0;
}

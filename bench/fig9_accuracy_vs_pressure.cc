/**
 * @file
 * Reproduces Figure 9: detection accuracy as a function of the pressure
 * a victim places in each shared resource. The paper finds very low and
 * very high pressure carry the most detection value, with a dip at
 * moderate pressure (e.g. the 20-50% disk-bandwidth region where many
 * application classes overlap).
 */
#include <iostream>

#include "obs/report.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    std::map<sim::Resource,
             std::map<int, std::pair<size_t, size_t>>>
        bins;
    for (uint64_t seed : {31, 32, 33}) {
        core::ExperimentConfig cfg;
        cfg.victims = 140;
        cfg.seed = seed;
        auto result = core::ControlledExperiment(cfg).run();
        for (const auto& o : result.outcomes) {
            for (sim::Resource r :
                 {sim::Resource::L1I, sim::Resource::LLC,
                  sim::Resource::CPU, sim::Resource::MemCap,
                  sim::Resource::NetBw, sim::Resource::DiskBw}) {
                int lo = std::min(
                    80, static_cast<int>(o.spec.base[r] / 20) * 20);
                auto& [c, t] = bins[r][lo];
                ++t;
                c += o.classCorrect ? 1 : 0;
            }
        }
    }

    std::cout << "== Figure 9: accuracy vs victim resource pressure "
                 "(paper: extremes detect best) ==\n";
    util::AsciiTable table({"Pressure bin", "L1-i", "LLC", "CPU",
                            "MemCap", "NetBW", "DiskBW"});
    for (int lo = 0; lo <= 80; lo += 20) {
        std::vector<std::string> row{
            std::to_string(lo) + "-" + std::to_string(lo + 20) + "%"};
        for (sim::Resource r :
             {sim::Resource::L1I, sim::Resource::LLC, sim::Resource::CPU,
              sim::Resource::MemCap, sim::Resource::NetBw,
              sim::Resource::DiskBw}) {
            auto it = bins[r].find(lo);
            if (it == bins[r].end() || it->second.second == 0) {
                row.push_back("-");
            } else {
                double acc = static_cast<double>(it->second.first) /
                             static_cast<double>(it->second.second);
                row.push_back(util::AsciiTable::percent(acc));
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "(bins with '-' had no victims whose profile falls "
                 "there)\n";
    return 0;
}

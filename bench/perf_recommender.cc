/**
 * @file
 * Recommender query-path benchmark, two modes in one binary:
 *
 *  - default: google-benchmark microlatencies of the data-mining
 *    pipeline (SVD+SGD completion, analyze, decompose), as before.
 *  - `--json PATH`: a fixed, seeded query-throughput harness that runs
 *    a mixed analyze/decompose workload single- and multi-threaded and
 *    writes machine-readable BENCH_recommender.json (p50/p99 latency,
 *    queries/sec, and a bit-exact digest of every query's outputs).
 *    The harness also sweeps analyzeBatch() over batch sizes 1-64
 *    (`batched.batch_size_sweep`) and gates that the batched path folds
 *    to the same digest as per-query analyze().
 *
 * The digest folds the raw IEEE-754 bytes of every ranking score,
 *    margin, fitted level, reconstructed coordinate, decomposition part
 * and distance into an FNV-1a hash, so any change to the query path
 * that is not bit-identical flips it. `scripts/check.sh` compares the
 * digest (and the multi-thread digest) against the recorded golden in
 * `bench/BENCH_recommender.golden` — performance is reported, but
 * correctness is what gates.
 *
 * The paper reports ~50 msec + ~30 msec stages and an 80 msec
 * 95th-percentile end-to-end latency on 2016 hardware.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.h"
#include "core/recommender.h"
#include "linalg/sgd.h"
#include "linalg/svd.h"
#include "util/thread_pool.h"
#include "workloads/generators.h"

using namespace bolt;

namespace {

struct Trained
{
    core::TrainingSet training;
    std::unique_ptr<core::HybridRecommender> recommender;

    Trained()
    {
        util::Rng rng(1);
        auto specs = workloads::trainingSet(rng);
        training = core::TrainingSet::fromSpecs(specs, rng);
        recommender =
            std::make_unique<core::HybridRecommender>(training);
    }
};

Trained&
trained()
{
    static Trained instance;
    return instance;
}

core::SparseObservation
sampleObservation(size_t observed)
{
    const auto& entry = trained().training.entry(17);
    core::SparseObservation obs;
    size_t n = 0;
    for (sim::Resource r : sim::kAllResources) {
        if (n++ >= observed)
            break;
        obs.set(r, entry.profile[r]);
    }
    return obs;
}

} // namespace

static void
BM_TrainingSvd(benchmark::State& state)
{
    auto matrix = trained().training.matrix();
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::svd(matrix));
}
BENCHMARK(BM_TrainingSvd);

static void
BM_SgdCompletion(benchmark::State& state)
{
    auto matrix = trained().training.matrix();
    linalg::SparseMatrix sparse = linalg::SparseMatrix::dense(matrix);
    // Hide the last row's tail entries as an unknown victim would.
    for (size_t c = 3; c < sim::kNumResources; ++c)
        sparse.mask[matrix.rows() - 1][c] = false;
    linalg::SgdConfig cfg;
    cfg.rank = 4;
    cfg.epochs = 60;
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::sgdFactorize(sparse, cfg));
}
BENCHMARK(BM_SgdCompletion);

static void
BM_RecommenderAnalyze(benchmark::State& state)
{
    auto obs = sampleObservation(static_cast<size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(trained().recommender->analyze(obs));
    state.SetLabel("observed=" + std::to_string(state.range(0)) +
                   " (paper end-to-end p95 ~80ms)");
}
BENCHMARK(BM_RecommenderAnalyze)->Arg(2)->Arg(3)->Arg(6)->Arg(10);

static void
BM_Decompose(benchmark::State& state)
{
    auto obs = sampleObservation(10);
    auto max_parts = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            trained().recommender->decompose(obs, true, max_parts));
}
BENCHMARK(BM_Decompose)->Arg(1)->Arg(2)->Arg(3);

static void
BM_TrainingSetBuild(benchmark::State& state)
{
    for (auto _ : state) {
        util::Rng rng(9);
        auto specs = workloads::trainingSet(rng);
        benchmark::DoNotOptimize(
            core::TrainingSet::fromSpecs(specs, rng));
    }
}
BENCHMARK(BM_TrainingSetBuild);

// ---------------------------------------------------------------------------
// Query-throughput harness (--json mode).
// ---------------------------------------------------------------------------

namespace {

/** FNV-1a over raw bytes; doubles are folded bit-for-bit. */
struct Digest
{
    uint64_t h = 1469598103934665603ull;

    void bytes(const void* p, size_t n)
    {
        const auto* b = static_cast<const unsigned char*>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    }
    void d(double v) { bytes(&v, sizeof v); }
    void u(uint64_t v) { bytes(&v, sizeof v); }
};

/** One pre-built query of the fixed mix. */
struct Query
{
    core::SparseObservation obs;
    bool isDecompose = false;
    bool coreShared = false;
    size_t maxParts = 3;
};

/**
 * The fixed query mix: a deterministic blend of single-tenant analyze
 * probes (2-10 observed resources, Exact and Upper bounds, varying
 * victim load) and multi-tenant decompose aggregates (two blended
 * training entries). Generation touches only frozen APIs
 * (Rng, scaledPressure, SparseObservation), so the mix is byte-stable
 * across the query-path rewrite this digest gates.
 */
std::vector<Query>
buildQueryMix(size_t analyze_queries, size_t decompose_queries)
{
    const auto& tr = trained().training;
    size_t m = tr.size();
    util::Rng rng(20260806);
    std::vector<Query> queries;
    queries.reserve(analyze_queries + decompose_queries);

    const size_t observed_counts[] = {2, 3, 5, 6, 10};
    for (size_t q = 0; q < analyze_queries; ++q) {
        const auto& entry = tr.entry((q * 7 + 3) % m);
        double level = 0.30 + 0.05 * static_cast<double>(q % 13);
        sim::ResourceVector p =
            workloads::scaledPressure(entry.fullLoadBase, level);
        size_t observed = observed_counts[q % 5];
        Query query;
        size_t n = 0;
        for (sim::Resource r : sim::kAllResources) {
            if (n >= observed)
                break;
            double noisy = std::clamp(
                p[r] + rng.gaussian(0.0, 1.0), 0.0, 100.0);
            // Every third query reads uncore resources as aggregates.
            bool upper = (q % 3 == 0) && !sim::isCoreResource(r);
            query.obs.set(r, noisy,
                          upper ? core::SparseObservation::Bound::Upper
                                : core::SparseObservation::Bound::Exact);
            ++n;
        }
        queries.push_back(std::move(query));
    }

    for (size_t q = 0; q < decompose_queries; ++q) {
        const auto& a = tr.entry((q * 11 + 5) % m);
        const auto& b = tr.entry((q * 17 + 29) % m);
        double la = 0.5 + 0.1 * static_cast<double>(q % 5);
        double lb = 0.4 + 0.1 * static_cast<double>(q % 7);
        sim::ResourceVector pa =
            workloads::scaledPressure(a.fullLoadBase, la);
        sim::ResourceVector pb =
            workloads::scaledPressure(b.fullLoadBase, lb);
        Query query;
        query.isDecompose = true;
        query.coreShared = (q % 2 == 0);
        query.maxParts = 2 + (q % 2);
        for (sim::Resource r : sim::kAllResources) {
            double v = sim::isCoreResource(r)
                           ? pa[r]
                           : std::min(pa[r] + pb[r], 100.0);
            v = std::clamp(v + rng.gaussian(0.0, 1.0), 0.0, 100.0);
            query.obs.set(r, v);
        }
        queries.push_back(std::move(query));
    }
    return queries;
}

void
foldAnalyze(Digest& dig, const core::SimilarityResult& r)
{
    dig.u(r.ranking.size());
    for (const auto& [idx, score] : r.ranking) {
        dig.u(idx);
        dig.d(score);
    }
    for (const auto& [label, share] : r.distribution) {
        dig.bytes(label.data(), label.size());
        dig.d(share);
    }
    for (size_t c = 0; c < sim::kNumResources; ++c)
        dig.d(r.reconstructed.at(c));
    dig.u(r.conceptsKept);
    dig.d(r.margin);
    dig.d(r.topFittedLevel);
}

void
foldDecompose(Digest& dig, const core::Decomposition& d)
{
    dig.u(d.parts.size());
    for (const auto& part : d.parts) {
        dig.u(part.index);
        dig.d(part.level);
    }
    dig.d(d.distance);
    dig.d(d.score);
}

/** Run one query, fold its outputs into `dig`. */
void
runQuery(const Query& q, Digest& dig)
{
    const auto& rec = *trained().recommender;
    if (q.isDecompose)
        foldDecompose(dig, rec.decompose(q.obs, q.coreShared, q.maxParts));
    else
        foldAnalyze(dig, rec.analyze(q.obs));
}

struct OpStats
{
    double p50Us = 0.0, p99Us = 0.0, qps = 0.0;
};

OpStats
opStats(std::vector<double>& latencies_us, double wall_s)
{
    OpStats out;
    if (latencies_us.empty())
        return out;
    std::sort(latencies_us.begin(), latencies_us.end());
    auto at = [&](double p) {
        size_t i = static_cast<size_t>(
            p * static_cast<double>(latencies_us.size() - 1) + 0.5);
        return latencies_us[std::min(i, latencies_us.size() - 1)];
    };
    out.p50Us = at(0.50);
    out.p99Us = at(0.99);
    out.qps = static_cast<double>(latencies_us.size()) / wall_s;
    return out;
}

struct HarnessResult
{
    OpStats analyzeSt, decomposeSt;
    double stQps = 0.0;      ///< Combined single-thread queries/sec.
    double mtQps = 0.0;      ///< Combined multi-thread queries/sec.
    unsigned mtThreads = 0;
    uint64_t digest = 0;     ///< Single-thread output digest.
    uint64_t mtDigest = 0;   ///< Multi-thread output digest (must match).

    /** Analyze-only throughput with the whole mix in one batch call. */
    double batchedQps = 0.0;
    /** (batch size, analyze queries/sec) for each swept batch size. */
    std::vector<std::pair<size_t, double>> batchSweep;
    /** analyzeBatch outputs fold to the same digest as analyze(). */
    bool batchDigestOk = false;
};

HarnessResult
runHarness(size_t reps)
{
    auto queries = buildQueryMix(64, 10);
    (void)trained(); // construct outside the timed region

    HarnessResult res;
    double best_wall = 1e300;
    std::vector<double> analyze_us, decompose_us;
    double analyze_wall = 0.0, decompose_wall = 0.0;

    using clock = std::chrono::steady_clock;
    for (size_t rep = 0; rep < reps; ++rep) {
        Digest dig;
        std::vector<double> a_us, d_us;
        double a_wall = 0.0, d_wall = 0.0;
        auto t0 = clock::now();
        for (const auto& q : queries) {
            auto q0 = clock::now();
            runQuery(q, dig);
            double us = std::chrono::duration<double, std::micro>(
                            clock::now() - q0)
                            .count();
            (q.isDecompose ? d_us : a_us).push_back(us);
            (q.isDecompose ? d_wall : a_wall) += us * 1e-6;
        }
        double wall =
            std::chrono::duration<double>(clock::now() - t0).count();
        res.digest = dig.h; // identical every rep (fixed mix)
        if (wall < best_wall) {
            best_wall = wall;
            analyze_us = std::move(a_us);
            decompose_us = std::move(d_us);
            analyze_wall = a_wall;
            decompose_wall = d_wall;
        }
    }
    res.stQps = static_cast<double>(queries.size()) / best_wall;
    res.analyzeSt = opStats(analyze_us, analyze_wall);
    res.decomposeSt = opStats(decompose_us, decompose_wall);

    // Multi-thread: the same mix fanned out over the pool, each query's
    // digest folded into its own slot and combined in query order so
    // the result is thread-count invariant.
    res.mtThreads = util::ThreadPool::globalThreads();
    std::vector<uint64_t> slot(queries.size(), 0);
    double best_mt = 1e300;
    for (size_t rep = 0; rep < reps; ++rep) {
        auto t0 = clock::now();
        util::parallelFor(0, queries.size(), [&](size_t i) {
            Digest dig;
            runQuery(queries[i], dig);
            slot[i] = dig.h;
        });
        best_mt = std::min(
            best_mt,
            std::chrono::duration<double>(clock::now() - t0).count());
    }
    Digest mt;
    for (uint64_t h : slot)
        mt.u(h);
    // Recompute the single-thread digest the same slot-wise way for an
    // apples-to-apples comparison.
    Digest st;
    for (const auto& q : queries) {
        Digest dig;
        runQuery(q, dig);
        st.u(dig.h);
    }
    res.mtDigest = mt.h;
    res.digest = st.h;
    res.mtQps = static_cast<double>(queries.size()) / best_mt;

    // Batched analyze: the mix's analyze queries pushed through
    // analyzeBatch() at increasing batch sizes, single-threaded. The
    // speedup over batch size 1 is pure kernel blocking — same thread,
    // same queries, the Pearson ranking term computed as one Q x E
    // block per call instead of Q row sweeps.
    const auto& rec = *trained().recommender;
    std::vector<core::SparseObservation> analyze_obs;
    for (const auto& q : queries)
        if (!q.isDecompose)
            analyze_obs.push_back(q.obs);
    const size_t sweep_sizes[] = {1, 2, 4, 8, 16, 32, 64};
    size_t sink = 0;
    for (size_t bs : sweep_sizes) {
        double best = 1e300;
        for (size_t rep = 0; rep < reps; ++rep) {
            auto t0 = clock::now();
            for (size_t i = 0; i < analyze_obs.size(); i += bs) {
                size_t n = std::min(bs, analyze_obs.size() - i);
                sink += rec.analyzeBatch(
                               std::span<const core::SparseObservation>(
                                   analyze_obs.data() + i, n))
                            .size();
            }
            best = std::min(
                best,
                std::chrono::duration<double>(clock::now() - t0).count());
        }
        res.batchSweep.emplace_back(
            bs, static_cast<double>(analyze_obs.size()) / best);
    }
    res.batchedQps = res.batchSweep.back().second;
    if (sink != analyze_obs.size() * std::size(sweep_sizes) * reps)
        res.batchedQps = 0.0; // lost queries: report as broken

    // Bit-equality gate: one full-mix batch must fold to the same
    // digest as the per-query analyze() path, in query order.
    auto batched = rec.analyzeBatch(
        std::span<const core::SparseObservation>(analyze_obs));
    Digest batch_dig, solo_dig;
    for (const auto& one : batched)
        foldAnalyze(batch_dig, one);
    for (const auto& obs : analyze_obs)
        foldAnalyze(solo_dig, rec.analyze(obs));
    res.batchDigestOk = batch_dig.h == solo_dig.h;
    return res;
}

std::string
hex(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
}

/**
 * Golden file format (bench/BENCH_recommender.golden), one `key value`
 * pair per line: `digest <hex>` recorded from the pre-optimization
 * build plus `baseline_*` throughput measured at the same commit.
 */
struct Golden
{
    std::string digest;
    double baselineStQps = 0.0;
    double baselineMtQps = 0.0;
    double baselineAnalyzeP50Us = 0.0;
    double baselineDecomposeP50Us = 0.0;
    bool loaded = false;
};

Golden
loadGolden(const std::string& path)
{
    Golden g;
    std::ifstream in(path);
    if (!in)
        return g;
    std::string key;
    while (in >> key) {
        if (key == "digest")
            in >> g.digest;
        else if (key == "baseline_st_qps")
            in >> g.baselineStQps;
        else if (key == "baseline_mt_qps")
            in >> g.baselineMtQps;
        else if (key == "baseline_analyze_p50_us")
            in >> g.baselineAnalyzeP50Us;
        else if (key == "baseline_decompose_p50_us")
            in >> g.baselineDecomposeP50Us;
        else
            in.ignore(1 << 20, '\n');
    }
    g.loaded = true;
    return g;
}

int
jsonMode(const std::string& json_path, const std::string& golden_path,
         size_t reps, bool dump_golden)
{
    // Metrics are recorded for the whole harness so the report can show
    // the query path's internals (prune-hit rate, scratch sourcing).
    // The digest gate below proves recording never changes results.
    auto& metrics = obs::MetricsRegistry::global();
    bool metrics_were_enabled = metrics.enabled();
    metrics.setEnabled(true);
    metrics.reset();
    HarnessResult r = runHarness(reps);
    obs::Snapshot snap = metrics.snapshot();
    metrics.setEnabled(metrics_were_enabled);

    if (dump_golden) {
        // Emit a fresh golden file (digest + this build's throughput as
        // the recorded baseline). Run against the pre-optimization tree.
        std::cout << "digest " << hex(r.digest) << "\n"
                  << "baseline_st_qps " << r.stQps << "\n"
                  << "baseline_mt_qps " << r.mtQps << "\n"
                  << "baseline_analyze_p50_us " << r.analyzeSt.p50Us
                  << "\n"
                  << "baseline_decompose_p50_us " << r.decomposeSt.p50Us
                  << "\n";
        return 0;
    }

    Golden g = loadGolden(golden_path);
    bool digest_ok = !g.loaded || g.digest == hex(r.digest);
    bool mt_ok = r.mtDigest == r.digest;

    std::ostringstream js;
    js.precision(6);
    js << std::fixed;
    js << "{\n"
       << "  \"bench\": \"recommender_query_throughput\",\n"
       << "  \"queries\": 74,\n"
       << "  \"digest\": \"" << hex(r.digest) << "\",\n"
       << "  \"digest_mt\": \"" << hex(r.mtDigest) << "\",\n"
       << "  \"digest_matches_golden\": "
       << (digest_ok ? "true" : "false") << ",\n"
       << "  \"digest_mt_matches_st\": " << (mt_ok ? "true" : "false")
       << ",\n"
       << "  \"single_thread\": {\n"
       << "    \"queries_per_sec\": " << r.stQps << ",\n"
       << "    \"analyze\": {\"p50_us\": " << r.analyzeSt.p50Us
       << ", \"p99_us\": " << r.analyzeSt.p99Us
       << ", \"queries_per_sec\": " << r.analyzeSt.qps << "},\n"
       << "    \"decompose\": {\"p50_us\": " << r.decomposeSt.p50Us
       << ", \"p99_us\": " << r.decomposeSt.p99Us
       << ", \"queries_per_sec\": " << r.decomposeSt.qps << "}\n"
       << "  },\n"
       << "  \"multi_thread\": {\n"
       << "    \"threads\": " << r.mtThreads << ",\n"
       << "    \"queries_per_sec\": " << r.mtQps << "\n"
       << "  },\n"
       << "  \"batched\": {\n"
       << "    \"batched_qps\": " << r.batchedQps << ",\n"
       << "    \"digest_matches_analyze\": "
       << (r.batchDigestOk ? "true" : "false") << ",\n"
       << "    \"speedup_vs_baseline_st\": "
       << (g.baselineStQps > 0.0 ? r.batchedQps / g.baselineStQps : 0.0)
       << ",\n"
       << "    \"batch_size_sweep\": [";
    for (size_t i = 0; i < r.batchSweep.size(); ++i) {
        js << (i ? ", " : "") << "{\"batch_size\": "
           << r.batchSweep[i].first
           << ", \"queries_per_sec\": " << r.batchSweep[i].second << "}";
    }
    js << "]\n  },\n";

    // Query-path internals from the metrics registry, over every query
    // the harness ran (timed reps, both thread modes, digest passes).
    uint64_t prune_skipped =
        snap.counter(obs::MetricId::kRecommenderPruneSkipped).value;
    uint64_t prune_evaluated =
        snap.counter(obs::MetricId::kRecommenderPruneEvaluated).value;
    uint64_t prune_total = prune_skipped + prune_evaluated;
    js << "  \"metrics\": {\n"
       << "    \"analyze_calls\": "
       << snap.counter(obs::MetricId::kRecommenderAnalyzeCalls).value
       << ",\n"
       << "    \"decompose_calls\": "
       << snap.counter(obs::MetricId::kRecommenderDecomposeCalls).value
       << ",\n"
       << "    \"prune_skipped\": " << prune_skipped << ",\n"
       << "    \"prune_evaluated\": " << prune_evaluated << ",\n"
       << "    \"prune_hit_rate\": "
       << (prune_total ? static_cast<double>(prune_skipped) /
                             static_cast<double>(prune_total)
                       : 0.0)
       << ",\n"
       << "    \"scratch_worker_hits\": "
       << snap.counter(obs::MetricId::kRecommenderScratchWorkerHits).value
       << ",\n"
       << "    \"scratch_spare_acquisitions\": "
       << snap.counter(obs::MetricId::kRecommenderScratchSpareAcquisitions)
              .value
       << "\n  },\n";

    js << "  \"baseline\": {\n"
       << "    \"recorded\": " << (g.loaded ? "true" : "false") << ",\n"
       << "    \"single_thread_queries_per_sec\": " << g.baselineStQps
       << ",\n"
       << "    \"multi_thread_queries_per_sec\": " << g.baselineMtQps
       << ",\n"
       << "    \"analyze_p50_us\": " << g.baselineAnalyzeP50Us << ",\n"
       << "    \"decompose_p50_us\": " << g.baselineDecomposeP50Us
       << "\n  },\n"
       << "  \"speedup_single_thread\": "
       << (g.baselineStQps > 0.0 ? r.stQps / g.baselineStQps : 0.0)
       << "\n}\n";

    std::ofstream out(json_path);
    out << js.str();
    out.close();
    std::cout << js.str();

    if (!digest_ok) {
        std::cerr << "FAIL: query digest " << hex(r.digest)
                  << " diverges from golden " << g.digest << "\n";
        return 1;
    }
    if (!mt_ok) {
        std::cerr << "FAIL: multi-thread digest diverges from "
                     "single-thread digest\n";
        return 1;
    }
    if (!r.batchDigestOk) {
        std::cerr << "FAIL: analyzeBatch digest diverges from "
                     "per-query analyze digest\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    std::string json_path, golden_path = "bench/BENCH_recommender.golden";
    size_t reps = 5;
    bool dump_golden = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (a == "--golden" && i + 1 < argc)
            golden_path = argv[++i];
        else if (a == "--reps" && i + 1 < argc)
            reps = static_cast<size_t>(std::stoul(argv[++i]));
        else if (a == "--dump-golden")
            dump_golden = true;
    }
    if (!json_path.empty() || dump_golden)
        return jsonMode(json_path, golden_path, reps, dump_golden);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

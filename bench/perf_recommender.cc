/**
 * @file
 * google-benchmark microbenchmarks for the data-mining pipeline: the
 * SVD+SGD collaborative-filtering stage, the weighted-Pearson content
 * stage, the end-to-end recommender analysis (the paper reports
 * ~50 msec + ~30 msec stages and an 80 msec 95th-percentile end-to-end
 * latency on 2016 hardware), and the additive decomposition used for
 * multi-tenant disentangling.
 */
#include <benchmark/benchmark.h>

#include "core/recommender.h"
#include "linalg/sgd.h"
#include "linalg/svd.h"
#include "workloads/generators.h"

using namespace bolt;

namespace {

struct Trained
{
    core::TrainingSet training;
    std::unique_ptr<core::HybridRecommender> recommender;

    Trained()
    {
        util::Rng rng(1);
        auto specs = workloads::trainingSet(rng);
        training = core::TrainingSet::fromSpecs(specs, rng);
        recommender =
            std::make_unique<core::HybridRecommender>(training);
    }
};

Trained&
trained()
{
    static Trained instance;
    return instance;
}

core::SparseObservation
sampleObservation(size_t observed)
{
    const auto& entry = trained().training.entry(17);
    core::SparseObservation obs;
    size_t n = 0;
    for (sim::Resource r : sim::kAllResources) {
        if (n++ >= observed)
            break;
        obs.set(r, entry.profile[r]);
    }
    return obs;
}

} // namespace

static void
BM_TrainingSvd(benchmark::State& state)
{
    auto matrix = trained().training.matrix();
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::svd(matrix));
}
BENCHMARK(BM_TrainingSvd);

static void
BM_SgdCompletion(benchmark::State& state)
{
    auto matrix = trained().training.matrix();
    linalg::SparseMatrix sparse = linalg::SparseMatrix::dense(matrix);
    // Hide the last row's tail entries as an unknown victim would.
    for (size_t c = 3; c < sim::kNumResources; ++c)
        sparse.mask[matrix.rows() - 1][c] = false;
    linalg::SgdConfig cfg;
    cfg.rank = 4;
    cfg.epochs = 60;
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::sgdFactorize(sparse, cfg));
}
BENCHMARK(BM_SgdCompletion);

static void
BM_RecommenderAnalyze(benchmark::State& state)
{
    auto obs = sampleObservation(static_cast<size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(trained().recommender->analyze(obs));
    state.SetLabel("observed=" + std::to_string(state.range(0)) +
                   " (paper end-to-end p95 ~80ms)");
}
BENCHMARK(BM_RecommenderAnalyze)->Arg(2)->Arg(3)->Arg(6)->Arg(10);

static void
BM_Decompose(benchmark::State& state)
{
    auto obs = sampleObservation(10);
    auto max_parts = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            trained().recommender->decompose(obs, true, max_parts));
}
BENCHMARK(BM_Decompose)->Arg(1)->Arg(2)->Arg(3);

static void
BM_TrainingSetBuild(benchmark::State& state)
{
    for (auto _ : state) {
        util::Rng rng(9);
        auto specs = workloads::trainingSet(rng);
        benchmark::DoNotOptimize(
            core::TrainingSet::fromSpecs(specs, rng));
    }
}
BENCHMARK(BM_TrainingSetBuild);

BENCHMARK_MAIN();

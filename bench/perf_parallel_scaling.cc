/**
 * @file
 * Parallel-scaling report for the experiment engine: runs the paper's
 * full 40-server / 108-victim controlled experiment at 1, 2, 4 and 8
 * threads (then hardware concurrency, if larger) and reports wall-clock
 * time, speedup over the single-thread run, and the detection accuracy
 * at every thread count — which must be bit-identical, since all RNG
 * streams are counter-based per task (see util::Rng::stream).
 *
 *   perf_parallel_scaling [--servers N] [--victims N] [--seed S]
 *
 * Speedup saturates at the machine's physical core count; on a
 * single-core host every configuration runs in about the same time and
 * the table mainly demonstrates the determinism guarantee.
 */
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

namespace {

long
flagValue(int argc, char** argv, const char* name, long fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return std::stol(argv[i + 1]);
    return fallback;
}

} // namespace

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    core::ExperimentConfig cfg;
    cfg.servers =
        static_cast<size_t>(flagValue(argc, argv, "--servers", 40));
    cfg.victims =
        static_cast<size_t>(flagValue(argc, argv, "--victims", 108));
    cfg.seed = static_cast<uint64_t>(flagValue(argc, argv, "--seed", 1));

    std::vector<unsigned> counts = {1, 2, 4, 8};
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    if (hw > counts.back())
        counts.push_back(hw);

    std::cout << "== Parallel scaling: full " << cfg.servers
              << "-server controlled experiment (hardware threads: "
              << hw << ") ==\n";

    util::AsciiTable table(
        {"Threads", "Wall (s)", "Speedup", "Class acc", "Char acc",
         "Identical"});
    double base_sec = 0.0;
    double ref_acc = 0.0, ref_char = 0.0;
    std::vector<core::VictimOutcome> ref_outcomes;
    bool all_identical = true;

    for (unsigned n : counts) {
        util::ThreadPool::setGlobalThreads(n);
        auto start = std::chrono::steady_clock::now();
        auto result = core::ControlledExperiment(cfg).run();
        auto stop = std::chrono::steady_clock::now();
        double sec =
            std::chrono::duration<double>(stop - start).count();
        if (n == counts.front()) {
            base_sec = sec;
            ref_acc = result.aggregateAccuracy();
            ref_char = result.characteristicsAccuracy();
            ref_outcomes = result.outcomes;
        }
        bool identical =
            result.outcomes.size() == ref_outcomes.size() &&
            result.aggregateAccuracy() == ref_acc &&
            result.characteristicsAccuracy() == ref_char;
        for (size_t i = 0; identical && i < ref_outcomes.size(); ++i) {
            const auto& a = ref_outcomes[i];
            const auto& b = result.outcomes[i];
            identical = a.server == b.server &&
                        a.classCorrect == b.classCorrect &&
                        a.charCorrect == b.charCorrect &&
                        a.iterations == b.iterations &&
                        a.spec.classLabel() == b.spec.classLabel();
        }
        all_identical &= identical;
        table.addRow({std::to_string(n), util::AsciiTable::num(sec, 2),
                      util::AsciiTable::num(base_sec / sec, 2) + "x",
                      util::AsciiTable::percent(
                          result.aggregateAccuracy(), 1),
                      util::AsciiTable::percent(
                          result.characteristicsAccuracy(), 1),
                      identical ? "yes" : "NO"});
    }
    table.print(std::cout);
    if (!all_identical) {
        std::cerr << "DETERMINISM VIOLATION: results differ across "
                     "thread counts\n";
        return 1;
    }
    return 0;
}

/**
 * @file
 * Figure 15 (extension): detection accuracy under deterministic
 * fault injection, as a function of the tenant-churn rate.
 *
 * Sweeps the per-round arrival/departure probability from 0 (the
 * paper's static controlled experiment) upward while holding a fixed
 * measurement-fault background (dropouts, spikes, capacity jitter), and
 * reports class accuracy, characteristics accuracy, how many victims
 * departed mid-detection, and the detector's abstention count. The
 * curve should decline gracefully — churn costs accuracy, it must not
 * collapse detection — and the zero-churn, zero-fault row must equal
 * the unfaulted experiment exactly (the fault layer is inert when
 * disabled).
 *
 * Output is deterministic for a given seed at any --threads value;
 * scripts/check.sh --fault diffs it against bench/BENCH_fig15_churn.golden.
 */
#include <iostream>
#include <sstream>

#include "core/experiment.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);
    // Metrics feed the abstention column; observability is inert by
    // contract (check.sh --obs), so this cannot change the results.
    obs::MetricsRegistry::global().setEnabled(true);

    // Churn sweep: arrival and departure share the rate; the
    // measurement-fault background is fixed so the x-axis isolates
    // churn. Rates are per host (arrivals) / per victim (departures)
    // per detection round.
    const double kChurnRates[] = {0.0, 0.02, 0.05, 0.10, 0.20, 0.35};

    std::cout << "== Figure 15: detection accuracy vs tenant-churn "
                 "rate ==\n";
    util::AsciiTable table({"Churn rate", "Class acc", "Char acc",
                            "Departed", "Abstentions", "Digest"});
    for (double rate : kChurnRates) {
        core::ExperimentConfig cfg;
        cfg.servers = 24;
        cfg.victims = 60;
        cfg.seed = 1517;
        if (rate > 0.0) {
            cfg.faults.arrivalProb = rate;
            cfg.faults.departureProb = rate;
            cfg.faults.phaseFlipProb = 0.5 * rate;
            cfg.faults.dropoutProb = 0.05;
            cfg.faults.spikeProb = 0.05;
            cfg.faults.capacityJitterAmp = 0.05;
        }

        auto& metrics = obs::MetricsRegistry::global();
        uint64_t abstained_before = 0;
        if (metrics.enabled())
            abstained_before =
                metrics.snapshot()
                    .counter(obs::MetricId::kDetectorGatedAbstentions)
                    .value;
        auto result = core::ControlledExperiment(cfg).run();
        uint64_t abstained = 0;
        if (metrics.enabled())
            abstained =
                metrics.snapshot()
                    .counter(obs::MetricId::kDetectorGatedAbstentions)
                    .value -
                abstained_before;

        std::ostringstream digest;
        digest << std::hex << result.digest();
        table.addRow(
            {util::AsciiTable::percent(rate, 0),
             util::AsciiTable::percent(result.aggregateAccuracy(), 1),
             util::AsciiTable::percent(result.characteristicsAccuracy(),
                                       1),
             std::to_string(result.departedCount()),
             metrics.enabled() ? std::to_string(abstained) : "n/a",
             digest.str()});
    }
    table.print(std::cout);
    std::cout << "\nChurn perturbs hosts mid-detection: departures "
                 "remove scored victims (they still count against "
                 "accuracy), arrivals add unscored background VMs, and "
                 "the measurement-fault background forces the detector "
                 "through its masking/retry/abstention path.\n";

    // Panel (b): measurement-dropout sweep at zero churn. Dropped
    // samples are masked, the detector re-probes with backoff, and at
    // extreme loss rates it abstains instead of guessing — accuracy
    // degrades far slower than the loss rate because abstention
    // replaces silent mislabeling.
    const double kDropoutRates[] = {0.0, 0.15, 0.30, 0.45, 0.60};
    std::cout << "\n== Panel (b): accuracy vs measurement-dropout rate "
                 "(no churn) ==\n";
    util::AsciiTable panel_b({"Dropout rate", "Class acc", "Char acc",
                              "Retry rounds", "Abstentions"});
    for (double rate : kDropoutRates) {
        core::ExperimentConfig cfg;
        cfg.servers = 24;
        cfg.victims = 60;
        cfg.seed = 1517;
        cfg.faults.dropoutProb = rate;

        auto& metrics = obs::MetricsRegistry::global();
        auto before = metrics.snapshot();
        auto result = core::ControlledExperiment(cfg).run();
        auto after = metrics.snapshot();
        auto delta = [&](obs::MetricId id) {
            return after.counter(id).value - before.counter(id).value;
        };
        panel_b.addRow(
            {util::AsciiTable::percent(rate, 0),
             util::AsciiTable::percent(result.aggregateAccuracy(), 1),
             util::AsciiTable::percent(result.characteristicsAccuracy(),
                                       1),
             std::to_string(delta(obs::MetricId::kDetectorRetryRounds)),
             std::to_string(
                 delta(obs::MetricId::kDetectorGatedAbstentions))});
    }
    panel_b.print(std::cout);
    return 0;
}

/**
 * @file
 * Reproduces the Section 5.3 VM co-residency detection attack: a
 * 40-node cluster hosts one target SQL server, seven decoy SQL VMs and
 * background key-value/Hadoop/Spark tenants. The adversary launches
 * waves of 10 probe VMs, uses Bolt to flag database-like co-residents,
 * and confirms the target with a sender/receiver pair over the public
 * SQL channel. Paper: 8.16 ms mean query latency rising to 26.14 ms
 * (~3x) under co-resident contention; detection in ~6 s with 11
 * adversarial VMs once a probe lands next to the victim.
 */
#include <iostream>

#include "obs/report.h"
#include "attacks/coresidency.h"
#include "util/table.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    std::cout << "== Section 5.3: VM co-residency detection ==\n";
    util::AsciiTable table({"Seed", "P(land)", "Waves", "VMs",
                            "Candidates", "Base lat (ms)",
                            "Attack lat (ms)", "Time (s)",
                            "Pinpointed"});
    int pinpointed = 0, runs = 0;
    double first_wave_vms = 0.0;
    for (uint64_t seed : {7, 11, 19, 23, 29}) {
        attacks::CoResidencyConfig cfg;
        cfg.seed = seed;
        cfg.maxWaves = 8;
        attacks::CoResidencyAttack attack(cfg);
        auto r = attack.run();
        table.addRow(
            {std::to_string(seed),
             util::AsciiTable::num(r.placementProbability, 2),
             std::to_string(r.wavesUsed),
             std::to_string(r.adversaryVmsUsed),
             std::to_string(r.candidateHosts),
             util::AsciiTable::num(r.baselineLatencyMs, 2),
             util::AsciiTable::num(r.attackLatencyMs, 2),
             util::AsciiTable::num(r.detectionTimeSec, 1),
             r.victimPinpointed ? "yes" : "no"});
        pinpointed += r.victimPinpointed ? 1 : 0;
        ++runs;
        if (r.wavesUsed == 1 && r.victimPinpointed)
            first_wave_vms = static_cast<double>(r.adversaryVmsUsed);
    }
    table.print(std::cout);
    std::cout << "\nPinpointed in " << pinpointed << "/" << runs
              << " runs. A first-wave success uses "
              << (first_wave_vms > 0
                      ? util::AsciiTable::num(first_wave_vms, 0)
                      : std::string("~11"))
              << " adversarial VMs (paper: 11 VMs, ~3x latency jump, "
                 "6 s)\n";
    return pinpointed > 0 ? 0 : 1;
}

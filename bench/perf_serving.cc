/**
 * @file
 * Serving-layer throughput-latency curves: sweep offered load over the
 * deterministic query-serving engine (src/serve) and print, per offered
 * rate, the achieved/goodput QPS and latency percentiles of
 *
 *  - `batch-1`: micro-batching disabled (maxBatch = 1),
 *  - `adaptive-8`: adaptive micro-batching up to 8 requests/batch with
 *    the classic linear-additive cost model (batchMarginalCost = 1),
 *    and
 *  - `gemm-8`: the same batching with the batched-kernel cost model
 *    (batchMarginalCost = 0.7): followers in a batch ride the blocked
 *    GEMM-shaped analyze sweep, so each costs a fraction of a solo
 *    query. The discount is grounded in perf_recommender's measured
 *    batched-vs-single throughput ratio.
 *
 * Everything on stdout is Sim-class — a pure function of (config,
 * seed) — so the full output is byte-identical at any --threads and is
 * committed as bench/BENCH_serving.golden; scripts/check.sh --serve
 * diffs a fresh run (at 1 and 8 threads) against it. Wall-clock info
 * goes to stderr.
 *
 * The binary also self-checks the two properties the curves exist to
 * demonstrate, and exits 1 if either regresses:
 *
 *  1. at mid load (offered well under capacity), adaptive batching
 *     keeps p99 latency inside the SLO, and
 *  2. at saturation, adaptive batching achieves strictly higher QPS
 *     than batch-size-1 (amortized batch setup is the point), and
 *  3. at saturation, the batched-kernel cost model serves at least as
 *     much as the linear-additive one (cheaper followers can only
 *     help).
 *
 * Regenerate the golden after an intentional serving change with:
 *   ./build-release/bench/perf_serving > bench/BENCH_serving.golden
 */
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "serve/engine.h"
#include "util/digest.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/generators.h"

using namespace bolt;

namespace {

constexpr double kSloMs = 50.0;
constexpr double kMidLoadQps = 800.0;
constexpr double kSaturationQps = 6400.0;
const double kOfferedQps[] = {400.0, 800.0, 1600.0, 3200.0, 6400.0};

struct ModeSpec
{
    const char* name;
    size_t maxBatch;
    double marginalCost;
};
const ModeSpec kModes[] = {{"batch-1", 1, 1.0},
                           {"adaptive-8", 8, 1.0},
                           {"gemm-8", 8, 0.7}};

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    util::applyThreadsFlag(argc, argv);

    // Same corpus construction as bolt_cli serve-bench --seed 1.
    util::Rng rng(1);
    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);

    util::AsciiTable table({"Offered", "Mode", "Achieved", "Goodput",
                            "Done", "RejQ", "RejSLO", "Shed", "p50 ms",
                            "p95 ms", "p99 ms", "Batch", "Digest"});
    util::Fnv1a combined;
    // (offered, mode) -> stats used by the self-checks below.
    std::map<std::pair<double, std::string>, serve::ServeStats> sweep;

    auto wall0 = std::chrono::steady_clock::now();
    for (double qps : kOfferedQps) {
        for (const ModeSpec& mode : kModes) {
            serve::ServeConfig cfg;
            cfg.workers = 4;
            cfg.queueCapacity = 256;
            cfg.maxBatch = mode.maxBatch;
            cfg.batchMarginalCost = mode.marginalCost;
            cfg.load.requests = static_cast<size_t>(qps);
            cfg.load.offeredQps = qps;
            cfg.load.sloMs = kSloMs;
            cfg.load.decomposeFraction = 0.15;
            cfg.load.seed = 1;

            auto result = serve::ServeEngine(recommender, cfg).run();
            const serve::ServeStats& st = result.stats;
            uint64_t digest = result.digest();
            combined.u64(digest);
            sweep[{qps, mode.name}] = st;

            table.addRow(
                {util::AsciiTable::num(qps, 0), mode.name,
                 util::AsciiTable::num(st.achievedQps, 1),
                 util::AsciiTable::num(st.goodputQps, 1),
                 std::to_string(st.completed),
                 std::to_string(st.rejectedQueueFull),
                 std::to_string(st.rejectedSloInfeasible),
                 std::to_string(st.shedDeadline),
                 util::AsciiTable::num(st.latencyMs.percentile(50), 2),
                 util::AsciiTable::num(st.latencyMs.percentile(95), 2),
                 util::AsciiTable::num(st.latencyMs.percentile(99), 2),
                 util::AsciiTable::num(st.batchSizes.mean(), 2),
                 hex64(digest)});
        }
    }
    double wall_sec = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall0)
                          .count();

    std::cout << "Serving throughput-latency sweep (workers=4, "
                 "queue=256, SLO="
              << util::AsciiTable::num(kSloMs, 0)
              << " ms, decompose=0.15, seed=1)\n";
    table.print(std::cout);
    std::cout << "combined digest: " << hex64(combined.h) << "\n";

    std::cerr << "wall: " << util::AsciiTable::num(wall_sec, 2)
              << " s at " << util::ThreadPool::globalThreads()
              << " thread(s) (Wall-class, not part of the golden)\n";

    // Self-checks: the properties the curves demonstrate.
    const auto& mid = sweep[{kMidLoadQps, "adaptive-8"}];
    const auto& sat_batched = sweep[{kSaturationQps, "adaptive-8"}];
    const auto& sat_single = sweep[{kSaturationQps, "batch-1"}];
    const auto& sat_gemm = sweep[{kSaturationQps, "gemm-8"}];
    int rc = 0;
    if (mid.latencyMs.percentile(99) > kSloMs) {
        std::cerr << "FAIL: adaptive-8 p99 at " << kMidLoadQps
                  << " qps exceeds the " << kSloMs << " ms SLO\n";
        rc = 1;
    }
    if (sat_batched.achievedQps <= sat_single.achievedQps) {
        std::cerr << "FAIL: adaptive-8 does not out-serve batch-1 at "
                  << kSaturationQps << " qps saturation\n";
        rc = 1;
    }
    if (sat_gemm.achievedQps < sat_batched.achievedQps) {
        std::cerr << "FAIL: gemm-8 under-serves adaptive-8 at "
                  << kSaturationQps << " qps saturation\n";
        rc = 1;
    }
    return rc;
}

/**
 * @file
 * Serving-layer throughput-latency curves: sweep offered load over the
 * deterministic query-serving engine (src/serve) and print, per offered
 * rate, the achieved/goodput QPS and latency percentiles of
 *
 *  - `batch-1`: micro-batching disabled (maxBatch = 1),
 *  - `adaptive-8`: adaptive micro-batching up to 8 requests/batch with
 *    the classic linear-additive cost model (batchMarginalCost = 1),
 *    and
 *  - `gemm-8`: the same batching with the batched-kernel cost model
 *    (batchMarginalCost = 0.7): followers in a batch ride the blocked
 *    GEMM-shaped analyze sweep, so each costs a fraction of a solo
 *    query. The discount is grounded in perf_recommender's measured
 *    batched-vs-single throughput ratio.
 *
 * Everything on stdout is Sim-class — a pure function of (config,
 * seed) — so the full output is byte-identical at any --threads and is
 * committed as bench/BENCH_serving.golden; scripts/check.sh --serve
 * diffs a fresh run (at 1 and 8 threads) against it. Wall-clock info
 * goes to stderr.
 *
 * The binary also self-checks the two properties the curves exist to
 * demonstrate, and exits 1 if either regresses:
 *
 *  1. at mid load (offered well under capacity), adaptive batching
 *     keeps p99 latency inside the SLO, and
 *  2. at saturation, adaptive batching achieves strictly higher QPS
 *     than batch-size-1 (amortized batch setup is the point), and
 *  3. at saturation, the batched-kernel cost model serves at least as
 *     much as the linear-additive one (cheaper followers can only
 *     help).
 *
 * Regenerate the golden after an intentional serving change with:
 *   ./build-release/bench/perf_serving > bench/BENCH_serving.golden
 *
 * `--json` runs the telemetry-overhead probe instead of the sweep:
 * the saturation config is timed with the windowed telemetry recorder
 * off and on (best wall time of three interleaved reps each), stdout is
 * one JSON object with both wall-QPS figures and the regression
 * percentage, and the exit code is 1 when telemetry costs more than 5%
 * of saturation wall-QPS or perturbs the sim digest. The golden sweep
 * output is untouched by this mode.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "obs/timeseries.h"
#include "serve/engine.h"
#include "util/digest.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/generators.h"

using namespace bolt;

namespace {

constexpr double kSloMs = 50.0;
constexpr double kMidLoadQps = 800.0;
constexpr double kSaturationQps = 6400.0;
const double kOfferedQps[] = {400.0, 800.0, 1600.0, 3200.0, 6400.0};

struct ModeSpec
{
    const char* name;
    size_t maxBatch;
    double marginalCost;
};
const ModeSpec kModes[] = {{"batch-1", 1, 1.0},
                           {"adaptive-8", 8, 1.0},
                           {"gemm-8", 8, 0.7}};

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

/** Saturation-load config the telemetry probe uses. */
serve::ServeConfig
saturationConfig()
{
    serve::ServeConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 256;
    cfg.maxBatch = 8;
    cfg.batchMarginalCost = 1.0;
    cfg.load.requests = static_cast<size_t>(kSaturationQps);
    cfg.load.offeredQps = kSaturationQps;
    cfg.load.sloMs = kSloMs;
    cfg.load.decomposeFraction = 0.15;
    cfg.load.seed = 1;
    return cfg;
}

/**
 * Telemetry-overhead probe (`--json`): time the saturation config with
 * the recorder off and on, interleaved, best of `reps` each. Wall-QPS
 * here is Wall-class (machine-dependent); the sim digests are asserted
 * equal so the probe also re-proves telemetry inertness end to end.
 */
int
runJsonProbe(const core::HybridRecommender& recommender)
{
    auto& telemetry = obs::TimeSeriesRecorder::global();
    auto timedRun = [&](bool on, uint64_t* digest) {
        telemetry.configure(telemetry.config()); // Drop old windows.
        telemetry.setEnabled(on);
        auto t0 = std::chrono::steady_clock::now();
        auto result =
            serve::ServeEngine(recommender, saturationConfig()).run();
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        telemetry.setEnabled(false);
        *digest = result.digest();
        return wall;
    };

    constexpr int kReps = 3;
    uint64_t digest_off = 0, digest_on = 0;
    double best_off = 0.0, best_on = 0.0;
    timedRun(false, &digest_off); // Warm caches before timing.
    for (int rep = 0; rep < kReps; ++rep) {
        double off = timedRun(false, &digest_off);
        double on = timedRun(true, &digest_on);
        best_off = rep ? std::min(best_off, off) : off;
        best_on = rep ? std::min(best_on, on) : on;
    }
    telemetry.configure(telemetry.config());

    double qps_off = best_off > 0.0 ? kSaturationQps / best_off : 0.0;
    double qps_on = best_on > 0.0 ? kSaturationQps / best_on : 0.0;
    double overhead_pct =
        qps_off > 0.0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
    bool digests_match = digest_off == digest_on;
    bool within_budget = overhead_pct < 5.0;

    std::ostringstream os;
    os.precision(6);
    os << "{\"bench\":\"perf_serving\",\"mode\":\"telemetry-overhead\","
       << "\"saturation_qps\":" << kSaturationQps
       << ",\"requests\":" << static_cast<size_t>(kSaturationQps)
       << ",\"reps\":" << kReps
       << ",\"telemetry_off_wall_qps\":" << qps_off
       << ",\"telemetry_on_wall_qps\":" << qps_on
       << ",\"telemetry_overhead_pct\":" << overhead_pct
       << ",\"sim_digest_off\":\"" << hex64(digest_off)
       << "\",\"sim_digest_on\":\"" << hex64(digest_on)
       << "\",\"digests_match\":" << (digests_match ? "true" : "false")
       << ",\"within_budget\":" << (within_budget ? "true" : "false")
       << "}\n";
    std::cout << os.str();

    if (!digests_match) {
        std::cerr << "FAIL: telemetry perturbed the sim digest\n";
        return 1;
    }
    if (!within_budget) {
        std::cerr << "FAIL: telemetry costs "
                  << util::AsciiTable::num(overhead_pct, 2)
                  << "% of saturation wall-QPS (budget 5%)\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    util::applyThreadsFlag(argc, argv);
    bool json_mode = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--json")
            json_mode = true;

    // Same corpus construction as bolt_cli serve-bench --seed 1.
    util::Rng rng(1);
    util::Rng tr = rng.substream("train");
    auto specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(specs, tr);
    core::HybridRecommender recommender(training);

    if (json_mode)
        return runJsonProbe(recommender);

    util::AsciiTable table({"Offered", "Mode", "Achieved", "Goodput",
                            "Done", "RejQ", "RejSLO", "Shed", "p50 ms",
                            "p95 ms", "p99 ms", "Batch", "Digest"});
    util::Fnv1a combined;
    // (offered, mode) -> stats used by the self-checks below.
    std::map<std::pair<double, std::string>, serve::ServeStats> sweep;

    auto wall0 = std::chrono::steady_clock::now();
    for (double qps : kOfferedQps) {
        for (const ModeSpec& mode : kModes) {
            serve::ServeConfig cfg;
            cfg.workers = 4;
            cfg.queueCapacity = 256;
            cfg.maxBatch = mode.maxBatch;
            cfg.batchMarginalCost = mode.marginalCost;
            cfg.load.requests = static_cast<size_t>(qps);
            cfg.load.offeredQps = qps;
            cfg.load.sloMs = kSloMs;
            cfg.load.decomposeFraction = 0.15;
            cfg.load.seed = 1;

            auto result = serve::ServeEngine(recommender, cfg).run();
            const serve::ServeStats& st = result.stats;
            uint64_t digest = result.digest();
            combined.u64(digest);
            sweep[{qps, mode.name}] = st;

            table.addRow(
                {util::AsciiTable::num(qps, 0), mode.name,
                 util::AsciiTable::num(st.achievedQps, 1),
                 util::AsciiTable::num(st.goodputQps, 1),
                 std::to_string(st.completed),
                 std::to_string(st.rejectedQueueFull),
                 std::to_string(st.rejectedSloInfeasible),
                 std::to_string(st.shedDeadline),
                 util::AsciiTable::num(st.latencyMs.percentile(50), 2),
                 util::AsciiTable::num(st.latencyMs.percentile(95), 2),
                 util::AsciiTable::num(st.latencyMs.percentile(99), 2),
                 util::AsciiTable::num(st.batchSizes.mean(), 2),
                 hex64(digest)});
        }
    }
    double wall_sec = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall0)
                          .count();

    std::cout << "Serving throughput-latency sweep (workers=4, "
                 "queue=256, SLO="
              << util::AsciiTable::num(kSloMs, 0)
              << " ms, decompose=0.15, seed=1)\n";
    table.print(std::cout);
    std::cout << "combined digest: " << hex64(combined.h) << "\n";

    std::cerr << "wall: " << util::AsciiTable::num(wall_sec, 2)
              << " s at " << util::ThreadPool::globalThreads()
              << " thread(s) (Wall-class, not part of the golden)\n";

    // Self-checks: the properties the curves demonstrate.
    const auto& mid = sweep[{kMidLoadQps, "adaptive-8"}];
    const auto& sat_batched = sweep[{kSaturationQps, "adaptive-8"}];
    const auto& sat_single = sweep[{kSaturationQps, "batch-1"}];
    const auto& sat_gemm = sweep[{kSaturationQps, "gemm-8"}];
    int rc = 0;
    if (mid.latencyMs.percentile(99) > kSloMs) {
        std::cerr << "FAIL: adaptive-8 p99 at " << kMidLoadQps
                  << " qps exceeds the " << kSloMs << " ms SLO\n";
        rc = 1;
    }
    if (sat_batched.achievedQps <= sat_single.achievedQps) {
        std::cerr << "FAIL: adaptive-8 does not out-serve batch-1 at "
                  << kSaturationQps << " qps saturation\n";
        rc = 1;
    }
    if (sat_gemm.achievedQps < sat_batched.achievedQps) {
        std::cerr << "FAIL: gemm-8 under-serves adaptive-8 at "
                  << kSaturationQps << " qps saturation\n";
        rc = 1;
    }
    return rc;
}

/**
 * @file
 * Calibration/ablation harness: runs the controlled experiment at three
 * co-residency densities and prints the accuracy statistics every other
 * figure builds on. Not a paper figure itself, but the quickest way to
 * verify the detection stack is in the paper's operating regime.
 */
#include <iostream>

#include "obs/report.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

namespace {

void
report(const char* title, const core::ExperimentResult& result)
{
    std::cout << "== " << title << " ==\n";
    std::cout << "  victims: " << result.outcomes.size()
              << "  class-accuracy: "
              << util::AsciiTable::percent(result.aggregateAccuracy(), 1)
              << "  characteristics-accuracy: "
              << util::AsciiTable::percent(result.characteristicsAccuracy(),
                                           1)
              << "\n  by co-residents:";
    for (const auto& [n, acc] : result.accuracyByCoResidents())
        std::cout << "  " << n << "->"
                  << util::AsciiTable::percent(acc, 0);
    std::cout << "\n  iterations pdf:";
    for (const auto& [n, frac] : result.iterationsPdf())
        std::cout << "  " << n << ":"
                  << util::AsciiTable::percent(frac, 0);
    std::cout << "\n\n";
}

} // namespace

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    {
        core::ExperimentConfig cfg;
        cfg.victims = 40;
        cfg.maxVictimsPerServer = 1;
        cfg.seed = 11;
        report("single victim per host",
               core::ControlledExperiment(cfg).run());
    }
    {
        core::ExperimentConfig cfg; // paper defaults: 108 victims
        cfg.seed = 12;
        report("controlled experiment (LL)",
               core::ControlledExperiment(cfg).run());
    }
    {
        core::ExperimentConfig cfg;
        cfg.victims = 180;
        cfg.seed = 13;
        report("dense co-residency",
               core::ControlledExperiment(cfg).run());
    }
    return 0;
}

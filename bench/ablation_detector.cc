/**
 * @file
 * Ablation study for the design choices DESIGN.md calls out, plus the
 * obfuscation-defense extension the paper's threat model excludes:
 *
 *  1. additive decomposition vs single-match detection (disentangling),
 *  2. shutter profiling on/off (no-core-sharing hosts),
 *  3. observation carry-over across rounds (load-phase mixing),
 *  4. extra in-round probes on/off (coverage vs cost),
 *  5. friendly-VM pattern obfuscation amplitude sweep (what a victim
 *     could buy by scrambling its resource usage, and what it costs).
 */
#include <iostream>

#include "obs/report.h"
#include "core/experiment.h"
#include "util/table.h"
#include "workloads/app.h"
#include "util/thread_pool.h"

using namespace bolt;

namespace {

double
accuracyWith(const std::function<void(core::ExperimentConfig&)>& tweak,
             uint64_t seed)
{
    core::ExperimentConfig cfg;
    cfg.servers = 20;
    cfg.victims = 52;
    cfg.seed = seed;
    tweak(cfg);
    return core::ControlledExperiment(cfg).run().aggregateAccuracy();
}

} // namespace

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    std::cout << "== Detector design ablations (20 hosts, 52 victims) "
                 "==\n";
    util::AsciiTable table({"Configuration", "Accuracy"});

    table.addRow({"full detector (baseline)",
                  util::AsciiTable::percent(
                      accuracyWith([](auto&) {}, 606))});
    table.addRow(
        {"no multi-tenant decomposition (single match per round)",
         util::AsciiTable::percent(accuracyWith(
             [](core::ExperimentConfig& c) {
                 c.detector.maxCoResidents = 1;
             },
             606))});
    table.addRow({"no shutter profiling",
                  util::AsciiTable::percent(accuracyWith(
                      [](core::ExperimentConfig& c) {
                          c.detector.shutterEnabled = false;
                      },
                      606))});
    table.addRow({"carry observations across rounds",
                  util::AsciiTable::percent(accuracyWith(
                      [](core::ExperimentConfig& c) {
                          c.detector.carryObservations = true;
                      },
                      606))});
    table.addRow({"no extra probes when unconfident",
                  util::AsciiTable::percent(accuracyWith(
                      [](core::ExperimentConfig& c) {
                          c.detector.extraProbesWhenUnconfident = 0;
                          c.detector.minObservedForMatch = 2;
                      },
                      606))});
    table.print(std::cout);

    std::cout << "\n== Extension: friendly-VM pattern obfuscation "
                 "(the defense §3.1 assumes away) ==\n";
    util::AsciiTable defense({"Obfuscation amplitude", "Bolt accuracy",
                              "Victim throughput cost"});
    for (double amplitude : {0.0, 0.1, 0.2, 0.35, 0.5}) {
        double acc = accuracyWith(
            [&](core::ExperimentConfig& c) {
                c.victimObfuscation = amplitude;
            },
            707);
        workloads::AppSpec probe_spec;
        probe_spec.obfuscation = amplitude;
        workloads::AppInstance probe(probe_spec, util::Rng(1));
        defense.addRow(
            {util::AsciiTable::percent(amplitude),
             util::AsciiTable::percent(acc),
             util::AsciiTable::percent(probe.obfuscationSlowdown() -
                                       1.0)});
    }
    defense.print(std::cout);
    std::cout << "\nObfuscation trades the victim's own throughput for "
                 "detectability — the same security/performance tension "
                 "as the isolation mechanisms of Section 6.\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 2: the probability that an unknown co-scheduled
 * workload is memcached as a function of its measured pressure in pairs
 * of resources. The paper's signature: very high L1-i plus high LLC
 * pressure means memcached with high probability, and zero disk traffic
 * is a strong indicator; the hot band around the peak corresponds to
 * memcached instances with different rd:wr ratios and value sizes plus
 * memory-bound neighbors like Spark.
 */
#include <algorithm>
#include <iostream>

#include "obs/report.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/generators.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::Rng rng(2);
    // Sample a large mixed population of instances at their natural
    // load levels, measure their (noisy) pressure, and bin P(memcached).
    util::Rng spec_rng = rng.substream("specs");
    util::Rng noise = rng.substream("noise");

    constexpr size_t kBins = 10;
    struct Pair
    {
        sim::Resource x, y;
        const char* label;
    };
    const std::vector<Pair> pairs = {
        {sim::Resource::L1I, sim::Resource::LLC,
         "L1-i (x) vs Last Level Cache (y)"},
        {sim::Resource::L1D, sim::Resource::CPU, "L1-d (x) vs CPU (y)"},
        {sim::Resource::MemCap, sim::Resource::MemBw,
         "Memory Capacity (x) vs Memory Bandwidth (y)"},
        {sim::Resource::DiskCap, sim::Resource::NetBw,
         "Disk Capacity (x) vs Network Bandwidth (y)"},
        {sim::Resource::DiskBw, sim::Resource::L2,
         "Disk Bandwidth (x) vs L2 Cache (y)"},
    };
    std::vector<util::Heatmap2D> maps(pairs.size(),
                                      util::Heatmap2D(0, 100, kBins));

    const auto& families = workloads::catalog();
    std::vector<double> weights;
    for (const auto& f : families)
        weights.push_back(f.userStudyWeight);

    for (int i = 0; i < 20000; ++i) {
        const auto& fam = families[spec_rng.weightedIndex(weights)];
        auto spec = workloads::randomSpec(fam, spec_rng);
        bool is_memcached = spec.family == "memcached";
        auto p = workloads::scaledPressure(
            spec.base, spec_rng.uniform(0.6, 1.0));
        for (size_t k = 0; k < pairs.size(); ++k) {
            double x = std::clamp(
                p[pairs[k].x] + noise.gaussian(0, 3.0), 0.0, 100.0);
            double y = std::clamp(
                p[pairs[k].y] + noise.gaussian(0, 3.0), 0.0, 100.0);
            maps[k].add(x, y, is_memcached);
        }
    }

    std::cout << "== Figure 2: P(co-resident is memcached | resource "
                 "pressure) ==\n";
    for (size_t k = 0; k < pairs.size(); ++k) {
        util::AsciiHeatmap hm(pairs[k].label, "0-100%", "0-100%");
        hm.print(std::cout, kBins, [&](size_t bx, size_t by) {
            return maps[k].probability(bx, by);
        });
    }

    // Headline checks mirrored from the paper's reading of the figure.
    const auto& l1i_llc = maps[0];
    double hot = l1i_llc.probability(kBins - 2, kBins - 3);
    std::cout << "P(memcached | very high L1-i, high LLC) ~ "
              << (std::isnan(hot) ? 0.0 : hot) << "\n";
    const auto& disk_net = maps[3];
    double zero_disk = disk_net.probability(0, kBins - 4);
    std::cout << "P(memcached | zero disk, high net) ~ "
              << (std::isnan(zero_disk) ? 0.0 : zero_disk) << "\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 7: the PDF of profiling+data-mining iterations
 * until correct detection, in aggregate (paper: 71% need one iteration,
 * 15% a second, none benefit past the sixth) and split by the number of
 * co-scheduled applications (more co-residents need more iterations).
 */
#include <iostream>

#include "obs/report.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    core::ExperimentConfig cfg;
    cfg.victims = 140;
    cfg.seed = 23;
    auto result = core::ControlledExperiment(cfg).run();

    std::cout << "== Figure 7a: PDF of iterations until detection "
                 "(paper: 71% @1, 15% @2) ==\n";
    util::AsciiTable total({"Iterations", "PDF"});
    for (const auto& [n, frac] : result.iterationsPdf())
        total.addRow({std::to_string(n),
                      util::AsciiTable::percent(frac, 1)});
    total.print(std::cout);

    std::cout << "\n== Figure 7b: PDF split by co-residents "
                 "(single-victim hosts mostly need one iteration) ==\n";
    util::AsciiTable split(
        {"Iterations", "1 app", "2 apps", "3 apps", "4 apps", "5 apps"});
    for (int iter = 1; iter <= 6; ++iter) {
        std::vector<std::string> row{std::to_string(iter)};
        for (int co = 1; co <= 5; ++co) {
            auto pdf = result.iterationsPdf(co);
            auto it = pdf.find(iter);
            row.push_back(it == pdf.end()
                              ? "-"
                              : util::AsciiTable::percent(it->second, 0));
        }
        split.addRow(std::move(row));
    }
    split.print(std::cout);
    return 0;
}

/**
 * @file
 * Reproduces Figure 11: the probability distribution of application
 * types launched in the EC2-style user study — 436 jobs from 20 users
 * across 53 application labels, with per-user preference skews visible
 * as blocks of repeated submissions.
 */
#include <algorithm>
#include <iostream>
#include <map>

#include "obs/report.h"
#include "util/table.h"
#include "workloads/generators.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::Rng rng(2017);
    auto jobs = workloads::userStudy(rng);

    std::map<std::string, int> occurrences;
    std::map<std::string, std::map<int, int>> per_user;
    for (const auto& j : jobs) {
        ++occurrences[j.spec.family];
        ++per_user[j.spec.family][j.user];
    }

    std::cout << "== Figure 11: application mix of the user study ("
              << jobs.size() << " jobs, 20 users, "
              << occurrences.size() << " of 53 labels drawn) ==\n";
    util::AsciiTable table(
        {"Application", "Occurrences", "Users", "Top user share"});
    // Order families by catalog position, as in the figure's x axis.
    for (const auto& fam : workloads::catalog()) {
        auto it = occurrences.find(fam.name);
        if (it == occurrences.end())
            continue;
        int top_user = 0;
        for (const auto& [user, n] : per_user[fam.name])
            top_user = std::max(top_user, n);
        table.addRow({fam.name, std::to_string(it->second),
                      std::to_string(per_user[fam.name].size()),
                      util::AsciiTable::percent(
                          static_cast<double>(top_user) / it->second)});
    }
    table.print(std::cout);

    // The paper's mix is dominated by the server frameworks.
    std::vector<std::pair<int, std::string>> ranked;
    for (const auto& [name, n] : occurrences)
        ranked.emplace_back(n, name);
    std::sort(ranked.rbegin(), ranked.rend());
    std::cout << "\nMost submitted: ";
    for (size_t i = 0; i < 5 && i < ranked.size(); ++i)
        std::cout << ranked[i].second << " (" << ranked[i].first << ") ";
    std::cout << "\n";
    return 0;
}

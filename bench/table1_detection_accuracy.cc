/**
 * @file
 * Reproduces Table 1: Bolt's detection accuracy in the controlled
 * 40-server experiment with 108 victims, per application class, under
 * the least-loaded scheduler and the Quasar-style interference-aware
 * scheduler. Paper reference: aggregate 87% (LL) / 89% (Quasar);
 * memcached 78/80, Hadoop 92/92, Spark 85/86, Cassandra 90/89,
 * speccpu2006 84/85.
 */
#include <iostream>

#include "obs/report.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    std::cout << "== Table 1: detection accuracy, controlled experiment "
                 "(paper: 87% LL / 89% Quasar aggregate) ==\n";

    core::ExperimentConfig ll_cfg;
    ll_cfg.seed = 2017;
    auto ll = core::ControlledExperiment(ll_cfg).run();

    core::ExperimentConfig q_cfg;
    q_cfg.seed = 2017;
    q_cfg.policy = core::ExperimentConfig::Policy::Quasar;
    auto quasar = core::ControlledExperiment(q_cfg).run();

    util::AsciiTable table({"Applications", "Least Load scheduler",
                            "Quasar scheduler"});
    table.addRow({"Aggregate",
                  util::AsciiTable::percent(ll.aggregateAccuracy()),
                  util::AsciiTable::percent(quasar.aggregateAccuracy())});
    for (const char* cls : {"memcached", "Hadoop", "Spark", "Cassandra",
                            "speccpu2006"}) {
        table.addRow({cls,
                      util::AsciiTable::percent(ll.accuracyForClass(cls)),
                      util::AsciiTable::percent(
                          quasar.accuracyForClass(cls))});
    }
    table.print(std::cout);

    std::cout << "\nVictims scheduled: " << ll.outcomes.size() << " (LL), "
              << quasar.outcomes.size() << " (Quasar)\n";
    std::cout << "Resource-characteristics accuracy: "
              << util::AsciiTable::percent(ll.characteristicsAccuracy())
              << " (LL), "
              << util::AsciiTable::percent(
                     quasar.characteristicsAccuracy())
              << " (Quasar)\n";
    return 0;
}

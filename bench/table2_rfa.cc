/**
 * @file
 * Reproduces Table 2: resource-freeing attacks against an Apache
 * webserver (helper: CGI request storm saturating CPU), a network-bound
 * Hadoop job (iperf-like helper) and a memory-bound Spark k-means
 * (streaming-memory helper), with SPEC mcf as the beneficiary.
 * Paper: webserver -64% QPS / mcf +24%; Hadoop -36% exec / mcf +16%;
 * Spark -52% exec / mcf +38%.
 */
#include <iostream>

#include "obs/report.h"
#include "attacks/rfa.h"
#include "util/table.h"
#include "workloads/catalog.h"

using namespace bolt;

namespace {

workloads::AppSpec
steady(const char* family, const char* variant, double level,
       util::Rng& rng, const char* dataset = "M")
{
    const auto* f = workloads::findFamily(family);
    const workloads::VariantDef* v = &f->variants[0];
    for (const auto& cand : f->variants)
        if (cand.name == variant)
            v = &cand;
    auto spec = workloads::instantiate(*f, *v, dataset, rng);
    spec.pattern = workloads::LoadPattern::constant(level);
    return spec;
}

} // namespace

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::Rng rng(77);
    sim::ContentionModel contention{
        sim::IsolationConfig::none(sim::Platform::VirtualMachine)};
    struct Row
    {
        const char* name;
        const char* family;
        const char* variant;
        sim::Resource target;
        double mcfLevel;
        const char* mcfDataset;
        const char* paper_victim;
        const char* paper_mcf;
    };
    // Each RFA is a separate launch; the beneficiary instance is sized
    // per experiment (its baseline overlap with the victim is what the
    // attack converts into gain).
    const std::vector<Row> rows = {
        {"Apache Webserver", "http server", "apache",
         sim::Resource::CPU, 0.85, "M", "-64% (QPS)", "+24%"},
        {"Hadoop (network-bound)", "hadoop", "sort",
         sim::Resource::NetBw, 0.85, "M", "-36% (Exec.)", "+16%"},
        {"Spark (k-means)", "spark", "kmeans", sim::Resource::MemBw,
         0.75, "S", "-52% (Exec.)", "+38%"},
    };

    std::cout << "== Table 2: RFA impact on victims and the mcf "
                 "beneficiary ==\n";
    util::AsciiTable table({"Victim", "Victim impact", "Paper",
                            "mcf gain", "Paper ", "Target resource"});
    for (const auto& row : rows) {
        auto mcf = steady("speccpu", "mcf", row.mcfLevel, rng,
                          row.mcfDataset);
        auto victim = steady(row.family, row.variant, 0.95, rng);
        auto outcome =
            attacks::runRfa(victim, mcf, row.target, contention);
        table.addRow(
            {row.name,
             util::AsciiTable::percent(outcome.victimChange, 0) + " (" +
                 outcome.victimMetric + ")",
             row.paper_victim,
             "+" + util::AsciiTable::percent(outcome.beneficiaryGain, 0),
             row.paper_mcf, sim::resourceName(outcome.targetResource)});
    }
    table.print(std::cout);
    std::cout << "\n(The victim's dominant resource comes from Bolt's "
                 "detection; the helper saturates exactly that "
                 "resource.)\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 10: sensitivity of detection accuracy to (a) the
 * profiling interval (accuracy drops sharply past ~30 s on changing
 * workloads; 5-minute profiling misses half), (b) the adversarial VM
 * size (below 4 vCPUs the probes cannot generate enough contention;
 * larger VMs help but co-residency becomes unlikely), and (c) the
 * number of profiling microbenchmarks (one is insufficient, returns
 * diminish past three).
 */
#include <iostream>

#include "obs/report.h"
#include "core/detector.h"
#include "core/experiment.h"
#include "sim/cluster.h"
#include "util/table.h"
#include "workloads/generators.h"
#include "util/thread_pool.h"

using namespace bolt;

namespace {

/**
 * (a) Profiling-interval sweep: a victim running consecutive jobs is
 * re-detected every `interval` seconds; accuracy is the fraction of
 * checkpoints where the latest detection still matches the job then
 * running.
 */
double
intervalAccuracy(double interval_sec, uint64_t seed)
{
    util::Rng rng(seed);
    util::Rng tr = rng.substream("train");
    auto train_specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(train_specs, tr);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    // The six trial runs are independent (every RNG stream below is a
    // pure function of (seed, run)), so they fan out on the global
    // thread pool; per-run tallies land in their own slots and the sum
    // is thread-count invariant.
    constexpr size_t kRuns = 6;
    std::vector<int> run_correct(kRuns, 0), run_total(kRuns, 0);
    util::parallelFor(0, kRuns, [&](size_t run_idx) {
        int run = static_cast<int>(run_idx);
        int correct = 0, total = 0;
        util::Rng victim_rng = rng.substream("v", run);
        auto victim = workloads::phasedVictim(victim_rng, 70.0);
        sim::Cluster cluster(1);
        sim::Tenant adversary{cluster.nextTenantId(), 4, true};
        cluster.placeOn(0, adversary);
        sim::Tenant tenant{cluster.nextTenantId(), 4, false};
        cluster.placeOn(0, tenant);
        util::Rng inst_rng = rng.substream("inst", run);
        std::vector<workloads::AppInstance> instances;
        for (const auto& spec : victim.phases)
            instances.emplace_back(
                spec, inst_rng.substream("p", instances.size()));
        sim::ContentionModel contention(cluster.isolation());
        core::HostEnvironment env;
        env.server = &cluster.server(0);
        env.adversary = adversary.id;
        env.contention = &contention;
        env.pressureAt = [&](double t) {
            auto idx = std::min(
                victim.phases.size() - 1,
                static_cast<size_t>(std::max(0.0, t) / victim.phaseSec));
            sim::PressureMap pm;
            pm[tenant.id] = instances[idx].pressureAt(t);
            return pm;
        };
        util::Rng drng = rng.substream("d", run);

        // Detections happen every interval; correctness is checked 5 s
        // after each detection (the information's consumer acts on the
        // most recent label).
        std::string latest;
        double last_detection = -1e9;
        int detect_round = 0;
        for (double t = 0.0; t < victim.totalSec(); t += 5.0) {
            if (t - last_detection >= interval_sec) {
                auto round = detector.detectOnce(env, t, drng,
                                                 nullptr,
                                                 detect_round++);
                latest = round.topClass();
                last_detection = t;
            }
            ++total;
            correct +=
                latest == victim.at(t).classLabel() ? 1 : 0;
        }
        run_correct[run_idx] = correct;
        run_total[run_idx] = total;
    }, 1);
    int correct = 0, total = 0;
    for (size_t i = 0; i < kRuns; ++i) {
        correct += run_correct[i];
        total += run_total[i];
    }
    return static_cast<double>(correct) / static_cast<double>(total);
}

/** (b)/(c) small controlled experiments with one knob changed. */
double
experimentAccuracy(int adversary_vcpus, int benchmarks, uint64_t seed)
{
    core::ExperimentConfig cfg;
    cfg.servers = 20;
    cfg.victims = 48;
    cfg.seed = seed;
    cfg.adversaryVcpus = adversary_vcpus;
    // The VM-size sweep spans EC2 on-demand sizes up to 16 vCPUs; hosts
    // are c3.8xlarge-like (32 hardware threads) so even the largest
    // adversary leaves room for victims.
    cfg.coresPerServer = 16;
    cfg.detector.profiler.benchmarks = benchmarks;
    // The probe intensity an adversarial VM can reach scales with its
    // size up to the 4-vCPU knee (Fig. 10b).
    cfg.detector.profiler.intensityScale =
        std::min(1.0, adversary_vcpus / 4.0);
    if (benchmarks <= 2) {
        cfg.detector.extraProbesWhenUnconfident =
            std::max(0, benchmarks * 2 - 2);
        cfg.detector.minObservedForMatch = benchmarks + 1;
    } else {
        cfg.detector.extraProbesWhenUnconfident = benchmarks;
        cfg.detector.minObservedForMatch = std::min(6, benchmarks + 1);
    }
    return core::ControlledExperiment(cfg).run().aggregateAccuracy();
}

} // namespace

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    std::cout << "== Figure 10a: accuracy vs profiling interval "
                 "(paper: rapid drop past 30 s) ==\n";
    util::Series interval{"accuracy (%)", {}, {}};
    for (double sec : {10.0, 20.0, 30.0, 60.0, 120.0, 300.0}) {
        interval.xs.push_back(sec);
        interval.ys.push_back(intervalAccuracy(sec, 99) * 100.0);
    }
    util::printSeries(std::cout, "profiling interval sweep",
                      "interval (s)", {interval}, 0);

    std::cout << "\n== Figure 10b: accuracy vs adversarial VM size "
                 "(paper: <4 vCPUs insufficient) ==\n";
    util::Series size{"accuracy (%)", {}, {}};
    for (int vcpus : {1, 2, 4, 8, 16}) {
        size.xs.push_back(vcpus);
        size.ys.push_back(experimentAccuracy(vcpus, 2, 101) * 100.0);
    }
    util::printSeries(std::cout, "adversarial VM size sweep", "vCPUs",
                      {size}, 0);

    std::cout << "\n== Figure 10c: accuracy vs number of benchmarks "
                 "(paper: plateau past 3) ==\n";
    util::Series probes{"accuracy (%)", {}, {}};
    for (int b : {1, 2, 3, 4, 6, 8, 10}) {
        probes.xs.push_back(b);
        probes.ys.push_back(experimentAccuracy(4, b, 102) * 100.0);
    }
    util::printSeries(std::cout, "profiling benchmarks sweep",
                      "benchmarks", {probes}, 0);
    return 0;
}

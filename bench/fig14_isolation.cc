/**
 * @file
 * Reproduces Figure 14: detection accuracy under cumulatively-applied
 * isolation mechanisms (thread pinning, network bandwidth partitioning,
 * DRAM bandwidth isolation, LLC partitioning via CAT, and core
 * isolation) on baremetal, container and VM platforms. Paper shape:
 * accuracy declines from ~81% to ~50% as mechanisms stack, cache
 * partitioning is the sharpest single drop, core isolation collapses
 * containers/VMs to ~14% (disk-heavy workloads remain detectable),
 * core isolation alone still allows 46%, and the performance cost of
 * core isolation is ~34% (or 45% utilization loss if overprovisioned).
 */
#include <iostream>

#include "obs/report.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    struct Step
    {
        const char* label;
        sim::IsolationConfig (*make)(sim::Platform);
    };
    const std::vector<Step> ladder = {
        {"None", &sim::IsolationConfig::none},
        {"Thread Pinning", &sim::IsolationConfig::withThreadPinning},
        {"+Net BW Partitioning",
         &sim::IsolationConfig::withNetPartitioning},
        {"+Mem BW Partitioning",
         &sim::IsolationConfig::withMemBwPartitioning},
        {"+Cache Partitioning",
         &sim::IsolationConfig::withCachePartitioning},
        {"+Core Isolation", &sim::IsolationConfig::withCoreIsolation},
        {"Core Isolation only",
         &sim::IsolationConfig::coreIsolationOnly},
    };
    const std::vector<sim::Platform> platforms = {
        sim::Platform::Baremetal, sim::Platform::Container,
        sim::Platform::VirtualMachine};

    std::cout << "== Figure 14: detection accuracy vs isolation "
                 "techniques ==\n";
    util::AsciiTable table({"Isolation", "Baremetal", "Containers",
                            "Virtual Machines"});
    for (const auto& step : ladder) {
        std::vector<std::string> row{step.label};
        for (sim::Platform p : platforms) {
            core::ExperimentConfig cfg;
            cfg.servers = 24;
            cfg.victims = 60;
            cfg.seed = 4242;
            cfg.isolation = step.make(p);
            auto result = core::ControlledExperiment(cfg).run();
            row.push_back(
                util::AsciiTable::percent(result.aggregateAccuracy()));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // The security/performance trade-off the paper closes with.
    auto core_iso =
        sim::IsolationConfig::coreIsolationOnly(sim::Platform::Container);
    std::cout << "\nCore-isolation performance penalty for a 2-thread "
                 "job: "
              << util::AsciiTable::percent(
                     core_iso.selfContentionPenalty(2) - 1.0)
              << " (paper: 34% average execution-time penalty)\n";
    std::cout << "Overprovisioning to avoid that penalty doubles the "
                 "core reservation: utilization drops by "
              << util::AsciiTable::percent(0.45)
              << " in the paper's accounting\n";
    return 0;
}

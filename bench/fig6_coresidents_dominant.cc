/**
 * @file
 * Reproduces Figure 6: detection accuracy (a) as a function of the
 * number of co-scheduled applications per host (paper: >95% at 1,
 * dropping to 67% at 5, with a bump at 4 from the higher core-sharing
 * probability) and (b) per dominant resource (paper: L1-i, memory
 * bandwidth, network bandwidth and disk capacity detect best; L2 is a
 * poor indicator).
 */
#include <iostream>

#include "obs/report.h"
#include "core/experiment.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::applyThreadsFlag(argc, argv);

    // A denser victim mix exercises the full 1..5 co-residency range.
    std::map<int, util::Summary> by_co;
    std::map<sim::Resource, std::pair<size_t, size_t>> by_dom;
    // Mixed densities: the sparse run supplies single-victim hosts,
    // the dense runs exercise 3-5 co-residents.
    for (uint64_t seed : {11, 12, 13}) {
        core::ExperimentConfig cfg;
        cfg.victims = seed == 11 ? 60 : 140;
        cfg.seed = seed;
        auto result = core::ControlledExperiment(cfg).run();
        for (const auto& [n, acc] : result.accuracyByCoResidents())
            by_co[n].add(acc);
        for (const auto& o : result.outcomes) {
            auto& [c, t] = by_dom[o.dominant];
            ++t;
            c += o.classCorrect ? 1 : 0;
        }
    }

    std::cout << "== Figure 6a: accuracy vs number of co-residents "
                 "(paper: ~95/92/85/88/67%) ==\n";
    util::Series acc{"accuracy (%)", {}, {}};
    for (const auto& [n, s] : by_co) {
        acc.xs.push_back(n);
        acc.ys.push_back(s.mean() * 100.0);
    }
    util::printSeries(std::cout, "accuracy vs co-residents",
                      "co-residents", {acc}, 0);

    std::cout << "\n== Figure 6b: accuracy vs dominant resource "
                 "(paper: L1-i/MemBw/NetBw/DiskCap strong, L2 weak) ==\n";
    util::AsciiTable table({"Dominant resource", "Accuracy", "Victims"});
    for (const auto& [r, ct] : by_dom) {
        double a = ct.second
                       ? static_cast<double>(ct.first) /
                             static_cast<double>(ct.second)
                       : 0.0;
        table.addRow({sim::resourceName(r), util::AsciiTable::percent(a),
                      std::to_string(ct.second)});
    }
    table.print(std::cout);
    return 0;
}

/**
 * @file
 * Reproduces Figure 4: coverage of the resource-characteristics space
 * by the 120-application training set, shown as CPU-vs-memory and
 * network-vs-storage pressure scatters. The paper's point: the training
 * set spans the space so any new profile finds a nearby neighbor.
 */
#include <iostream>

#include "obs/report.h"
#include "core/training.h"
#include "util/table.h"
#include "workloads/generators.h"

using namespace bolt;

namespace {

void
scatter(const char* title, const std::vector<std::pair<double, double>>& pts)
{
    // 20x20 occupancy grid over [0,100]^2 rendered as ASCII.
    constexpr int kBins = 20;
    std::vector<std::vector<int>> grid(kBins, std::vector<int>(kBins, 0));
    for (auto [x, y] : pts) {
        int bx = std::min(kBins - 1, static_cast<int>(x / 100.0 * kBins));
        int by = std::min(kBins - 1, static_cast<int>(y / 100.0 * kBins));
        ++grid[static_cast<size_t>(by)][static_cast<size_t>(bx)];
    }
    std::cout << "## " << title << " ('.'=1, 'o'=2-3, 'O'=4+)\n";
    for (int by = kBins - 1; by >= 0; --by) {
        std::cout << "  |";
        for (int bx = 0; bx < kBins; ++bx) {
            int c = grid[static_cast<size_t>(by)][static_cast<size_t>(bx)];
            std::cout << (c == 0 ? ' ' : c == 1 ? '.' : c <= 3 ? 'o' : 'O');
        }
        std::cout << "|\n";
    }
    std::cout << "  +" << std::string(kBins, '-') << "+\n";
}

} // namespace

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::Rng rng(2017);
    auto specs = workloads::trainingSet(rng);
    auto training = core::TrainingSet::fromSpecs(specs, rng);

    std::vector<std::pair<double, double>> cpu_mem, net_disk;
    for (const auto& e : training.entries()) {
        cpu_mem.emplace_back(e.profile[sim::Resource::CPU],
                             e.profile[sim::Resource::MemBw]);
        net_disk.emplace_back(e.profile[sim::Resource::NetBw],
                              e.profile[sim::Resource::DiskBw]);
    }

    std::cout << "== Figure 4: training-set coverage (" << training.size()
              << " apps) ==\n";
    scatter("CPU pressure (x) vs Memory pressure (y)", cpu_mem);
    scatter("Network pressure (x) vs Storage pressure (y)", net_disk);

    // Quantify coverage: fraction of 25-point quadrants populated.
    int populated = 0;
    for (int qx = 0; qx < 4; ++qx)
        for (int qy = 0; qy < 4; ++qy) {
            bool hit = false;
            for (auto [x, y] : cpu_mem)
                hit |= x >= qx * 25 && x < (qx + 1) * 25 &&
                       y >= qy * 25 && y < (qy + 1) * 25;
            populated += hit ? 1 : 0;
        }
    std::cout << "CPU x Memory quadrants populated: " << populated
              << "/16\n";
    return 0;
}

/**
 * @file
 * Fleet-scaling curve: run the sharded fleet simulation
 * (sim::FleetCluster) from 1k to 128k hosts (8 VMs per host at boot,
 * so the top point churns a ~1M-VM fleet) and print, per scale, the
 * end-of-run Sim-class fleet statistics and outcome digest.
 *
 * Everything on stdout is Sim-class — a pure function of the per-row
 * (hosts, tenants, shards, epochs, seed) config — so the full output
 * is byte-identical at any --threads and is committed as
 * bench/BENCH_fleet_scaling.golden; scripts/check.sh --fleet diffs a
 * fresh run (at 1 and 8 threads) against it. The hosts-vs-wall-seconds
 * curve (the thing this bench exists to measure) goes to stderr:
 * wall-clock is Wall-class, not part of the golden.
 *
 * The binary also self-checks the tentpole determinism property and
 * exits 1 if it regresses: at the 4k-host scale, a 16-shard run on an
 * 8-thread pool must reproduce the 1-shard/1-thread digest byte for
 * byte (shards and threads partition work, never outcomes).
 *
 * Regenerate the golden after an intentional fleet-model change with:
 *   ./build-release/bench/perf_fleet_scaling > bench/BENCH_fleet_scaling.golden
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/shard.h"
#include "util/digest.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

namespace {

constexpr uint64_t kSeed = 2017;
constexpr int kEpochs = 4;
const size_t kHostScales[] = {1000, 4000, 16000, 64000, 128000};

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

/** The fleet config at a given host scale (8 VMs per host at boot). */
sim::FleetConfig
fleetAt(size_t hosts)
{
    sim::FleetConfig cfg;
    cfg.hosts = hosts;
    cfg.tenants = hosts * 8;
    // One shard per ~512 hosts keeps shards coarse enough to amortize
    // task dispatch yet plentiful enough to feed a wide pool.
    cfg.shards = std::max<size_t>(1, hosts / 512);
    cfg.epochs = kEpochs;
    cfg.arrivalsPerHostEpoch = 0.3;
    cfg.departureProb = 0.05;
    cfg.migrationProb = 0.03;
    cfg.hostFaultProb = 0.01;
    cfg.seed = kSeed;
    return cfg;
}

/** Digest-invariance self-check at the 4k-host scale. */
bool
selfCheck()
{
    sim::FleetConfig cfg = fleetAt(4000);
    unsigned restore = util::ThreadPool::globalThreads();

    cfg.shards = 1;
    util::ThreadPool::setGlobalThreads(1);
    sim::FleetResult base = sim::FleetCluster(cfg).run();

    cfg.shards = 16;
    util::ThreadPool::setGlobalThreads(8);
    sim::FleetResult sharded = sim::FleetCluster(cfg).run();

    util::ThreadPool::setGlobalThreads(restore);
    if (sharded.digest != base.digest) {
        std::cerr << "FAIL: 16-shard/8-thread digest "
                  << hex64(sharded.digest)
                  << " != 1-shard/1-thread digest " << hex64(base.digest)
                  << " at 4000 hosts\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    util::applyThreadsFlag(argc, argv);

    util::AsciiTable table({"Hosts", "Shards", "Booted", "Alive",
                            "Arrive", "Depart", "Migrate", "Faults",
                            "Util", "Digest"});
    util::Fnv1a combined;
    for (size_t hosts : kHostScales) {
        sim::FleetConfig cfg = fleetAt(hosts);
        auto t0 = std::chrono::steady_clock::now();
        sim::FleetResult r = sim::FleetCluster(cfg).run();
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        double util = r.epochs.empty() ? 0.0 : r.epochs.back().meanUtil;
        table.addRow({std::to_string(hosts), std::to_string(cfg.shards),
                      std::to_string(r.vmsBooted),
                      std::to_string(r.vmsAlive),
                      std::to_string(r.arrivals),
                      std::to_string(r.departures),
                      std::to_string(r.migrations),
                      std::to_string(r.hostFaults),
                      util::AsciiTable::num(util, 1) + "%",
                      hex64(r.digest)});
        combined.u64(hosts);
        combined.u64(r.digest);
        std::cerr << "(Wall-class, not part of the golden) " << hosts
                  << " hosts: " << util::AsciiTable::num(wall, 3)
                  << " s wall, "
                  << util::AsciiTable::num(
                         wall > 0.0
                             ? static_cast<double>(hosts) * kEpochs / wall
                             : 0.0,
                         0)
                  << " host-epochs/s\n";
    }
    table.print(std::cout);
    std::cout << "combined digest: " << hex64(combined.h) << "\n";

    if (!selfCheck())
        return 1;
    return 0;
}

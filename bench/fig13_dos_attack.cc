/**
 * @file
 * Reproduces Figure 13 and the Section 5.1 DoS impact numbers: a
 * memcached victim under (i) Bolt's victim-tailored internal DoS and
 * (ii) a naive CPU-saturating DoS, with a load-triggered live-migration
 * defense (70% CPU threshold, 8 s overhead). The naive attack drives
 * utilization over the trigger and the victim is migrated away around
 * t=80 s, after which its latency recovers; Bolt keeps utilization low
 * and continues degrading the victim. The aggregate study reports the
 * degradation bands (paper: 2.2x mean / 9.8x max execution time,
 * 8-140x tail inflation).
 */
#include <iostream>

#include "obs/report.h"
#include "attacks/dos.h"
#include "util/table.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    attacks::DosTimelineExperiment experiment;
    auto bolt_run = experiment.run(true);
    auto naive_run = experiment.run(false);

    std::cout << "== Figure 13: p99 latency and host CPU utilization "
                 "over time ==\n";
    util::AsciiTable table({"t (s)", "Bolt p99 (ms)", "Bolt util",
                            "Naive p99 (ms)", "Naive util", "event"});
    for (size_t t = 0; t < bolt_run.size(); t += 10) {
        std::string event;
        if (t >= 20 && t < 30)
            event = "attack starts (post-detection)";
        if (naive_run[t].migrating)
            event = "naive victim migrating";
        else if (naive_run[t].migrated && t > 0 &&
                 !naive_run[t - 10].migrated)
            event = "naive victim on fresh host";
        table.addRow({std::to_string(t),
                      util::AsciiTable::num(bolt_run[t].p99Ms, 1),
                      util::AsciiTable::percent(
                          bolt_run[t].cpuUtil / 100.0),
                      util::AsciiTable::num(naive_run[t].p99Ms, 1),
                      util::AsciiTable::percent(
                          naive_run[t].cpuUtil / 100.0),
                      event});
    }
    table.print(std::cout);

    double nominal = bolt_run[5].p99Ms;
    std::cout << "\nTail inflation at t=110s: Bolt "
              << util::AsciiTable::num(bolt_run[110].p99Ms / nominal, 1)
              << "x vs naive "
              << util::AsciiTable::num(naive_run[110].p99Ms / nominal, 1)
              << "x (the defense neutralized the naive attack)\n";

    std::cout << "\n== Section 5.1: aggregate DoS impact over the "
                 "controlled-experiment victims ==\n";
    auto impact = attacks::dosImpactStudy();
    util::AsciiTable agg({"Metric", "Measured", "Paper"});
    agg.addRow({"Mean execution-time degradation (batch)",
                util::AsciiTable::num(impact.meanExecDegradation, 1) +
                    "x",
                "2.2x"});
    agg.addRow({"Max execution-time degradation",
                util::AsciiTable::num(impact.maxExecDegradation, 1) + "x",
                "9.8x"});
    agg.addRow({"Tail-latency inflation (kv/db victims)",
                util::AsciiTable::num(impact.minTailMultiplier, 0) +
                    "x - " +
                    util::AsciiTable::num(impact.maxTailMultiplier, 0) +
                    "x",
                "8x - 140x"});
    agg.print(std::cout);
    return 0;
}

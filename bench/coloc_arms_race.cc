/**
 * @file
 * Placement arms race: play the attacker x policy x utilization
 * tournament (colo::runTournament) and the fleet-scale policy duel
 * (colo::runFleetDuel) and print the full Sim-class result tables.
 *
 * Everything on stdout is Sim-class — a pure function of the configs
 * and kSeed — so the output is byte-identical at any --threads and is
 * committed as bench/BENCH_coloc_arms_race.golden; scripts/check.sh
 * --armsrace diffs a fresh run (at 1 and 8 threads) against it. Wall
 * timing goes to stderr.
 *
 * The binary also self-checks the arms-race acceptance gates and exits
 * 1 if any regresses:
 *
 *  - tournamentSelfCheck: both secure policies (mab, secure-opt) cut
 *    the co-residency success rate vs LeastLoaded at every swept
 *    utilization level, at bounded utilization cost and within the
 *    migration budget;
 *  - fleet duel digests at 16 shards reproduce the 1-shard digests
 *    byte for byte (placement policies live on the sequential decision
 *    plane, so sharding must never move an outcome).
 *
 * Regenerate the golden after an intentional model change with:
 *   ./build-release/bench/coloc_arms_race > bench/BENCH_coloc_arms_race.golden
 */
#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "colo/tournament.h"
#include "util/cli_flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace bolt;

namespace {

constexpr uint64_t kSeed = 42;

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

/** Shard-invariance self-check over the fleet duel rows. */
bool
fleetSelfCheck(const colo::FleetDuelConfig& base_cfg,
               const colo::FleetDuelResult& base)
{
    colo::FleetDuelConfig cfg = base_cfg;
    cfg.shards = 16;
    colo::FleetDuelResult sharded = colo::runFleetDuel(cfg);
    if (sharded.rows.size() != base.rows.size()) {
        std::cerr << "FAIL: fleet duel row count changed with shards\n";
        return false;
    }
    for (size_t i = 0; i < base.rows.size(); ++i) {
        if (sharded.rows[i].digest != base.rows[i].digest) {
            std::cerr << "FAIL: fleet duel row " << i << " ("
                      << colo::fleetPolicyName(base.rows[i].policy) << "@"
                      << base.rows[i].utilLevel << "%) digest "
                      << hex64(sharded.rows[i].digest)
                      << " at 16 shards != "
                      << hex64(base.rows[i].digest) << " at 1 shard\n";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    util::applyThreadsFlag(argc, argv);

    colo::TournamentConfig tcfg;
    tcfg.seed = kSeed;

    auto t0 = std::chrono::steady_clock::now();
    colo::TournamentResult tournament = colo::runTournament(tcfg);
    double wall_t = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    std::cout << "== placement tournament (" << tcfg.servers
              << " servers, reps=" << tcfg.reps << ", seed=" << tcfg.seed
              << ") ==\n";
    colo::printTournament(tournament, std::cout);
    std::cout << "tournament digest: " << hex64(tournament.digest)
              << "\n\n";

    colo::FleetDuelConfig fcfg;
    fcfg.seed = kSeed;

    auto t1 = std::chrono::steady_clock::now();
    colo::FleetDuelResult duel = colo::runFleetDuel(fcfg);
    double wall_f = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t1)
                        .count();

    std::cout << "== fleet duel (" << fcfg.hosts << " hosts, "
              << fcfg.epochs << " epochs, " << fcfg.probes
              << " what-if probes, seed=" << fcfg.seed << ") ==\n";
    colo::printFleetDuel(duel, std::cout);
    std::cout << "fleet duel digest: " << hex64(duel.digest) << "\n";

    std::cerr << "(Wall-class, not part of the golden) tournament: "
              << util::AsciiTable::num(wall_t, 3) << " s, fleet duel: "
              << util::AsciiTable::num(wall_f, 3) << " s\n";

    std::string violation = colo::tournamentSelfCheck(tcfg, tournament);
    if (!violation.empty()) {
        std::cerr << "FAIL: arms-race gate: " << violation << "\n";
        return 1;
    }
    if (!fleetSelfCheck(fcfg, duel))
        return 1;
    return 0;
}

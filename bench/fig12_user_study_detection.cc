/**
 * @file
 * Reproduces Figure 12: the EC2-style user study. 436 user-submitted
 * jobs run on 200 32-vCPU instances over a 4-hour window, each hosting
 * a 4-vCPU Bolt VM. Bolt periodically detects co-residents on every
 * instance. Paper results: 277/436 jobs correctly labeled by name (12a),
 * 385/436 with correctly identified resource characteristics (12b), up
 * to ~6 concurrently-active jobs per instance with 14 instances unused
 * (12c). Unseen application types (email clients, image editors, ...)
 * cannot be labeled but their characteristics are still recovered.
 */
#include <algorithm>
#include <iostream>
#include <map>

#include "obs/report.h"
#include "core/detector.h"
#include "core/experiment.h"
#include "sim/cluster.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/generators.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::Rng rng(2017);

    // Train once with the same 120-app set as the controlled experiment.
    util::Rng tr = rng.substream("train");
    auto train_specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(train_specs, tr);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    // 200 instances; c3.8xlarge-like hosts modeled as 16 cores x 2 HT,
    // 4 vCPUs reserved for Bolt on each.
    constexpr size_t kInstances = 200;
    util::Rng job_rng = rng.substream("jobs");
    auto jobs = workloads::userStudy(job_rng);

    // Interval placement: each job goes to the instance with the fewest
    // concurrently-active jobs (capped), mimicking the study's
    // least-loaded default.
    struct Placed
    {
        workloads::UserJob job;
        size_t instance;
        workloads::AppInstance app;
        bool labelCorrect = false;
        bool charCorrect = false;
    };
    std::vector<Placed> placed;
    std::vector<std::vector<size_t>> on_instance(kInstances);
    util::Rng inst_rng = rng.substream("instances");

    auto overlaps = [&](const workloads::UserJob& a,
                        const workloads::UserJob& b) {
        return a.submitSec < b.submitSec + b.durationSec &&
               b.submitSec < a.submitSec + a.durationSec;
    };
    // Users may pick their instances (§4); most reuse a small personal
    // set of VMs they already launched, which is what concentrates jobs
    // and produces the 1-6 active co-residents of Fig. 12c.
    std::vector<std::vector<size_t>> user_instances(21);
    for (int u = 1; u <= 20; ++u)
        for (int k = 0; k < 8; ++k)
            user_instances[static_cast<size_t>(u)].push_back(
                inst_rng.index(kInstances));
    for (const auto& job : jobs) {
        // ~2/3 of jobs reuse the user's own instances; the rest go
        // through the default least-loaded pick over the whole pool.
        size_t best;
        if (inst_rng.bernoulli(0.65)) {
            const auto& prefer =
                user_instances[static_cast<size_t>(job.user)];
            best = prefer[0];
            int best_load = 1 << 20;
            for (size_t i : prefer) {
                int load = 0;
                for (size_t idx : on_instance[i])
                    load += overlaps(placed[idx].job, job) ? 1 : 0;
                if (load < best_load) {
                    best_load = load;
                    best = i;
                }
            }
        } else {
            best = 0;
            int best_load = 1 << 20;
            size_t start = inst_rng.index(kInstances);
            for (size_t k = 0; k < kInstances; ++k) {
                size_t i = (start + k) % kInstances;
                int load = 0;
                for (size_t idx : on_instance[i])
                    load += overlaps(placed[idx].job, job) ? 1 : 0;
                if (load < best_load) {
                    best_load = load;
                    best = i;
                }
                if (load == 0)
                    break;
            }
        }
        size_t idx = placed.size();
        placed.push_back(
            Placed{job, best,
                   workloads::AppInstance(
                       job.spec, inst_rng.substream("app", idx)),
                   false, false});
        on_instance[best].push_back(idx);
    }

    // Bolt samples each instance while jobs are active: every job's
    // window gets two detection opportunities.
    sim::ContentionModel contention{
        sim::IsolationConfig::none(sim::Platform::VirtualMachine)};
    util::Rng drng = rng.substream("detect");
    int detect_round = 0;

    for (size_t i = 0; i < kInstances; ++i) {
        if (on_instance[i].empty())
            continue;
        // Build the host: Bolt + up to the concurrently-active jobs.
        for (int pass = 0; pass < 2; ++pass) {
            for (size_t idx : on_instance[i]) {
                auto& target = placed[idx];
                if (target.labelCorrect && target.charCorrect)
                    continue;
                double t = target.job.submitSec +
                           drng.uniform(0.15, 0.85) *
                               target.job.durationSec;

                // Active set at time t.
                std::vector<size_t> active;
                for (size_t j : on_instance[i]) {
                    const auto& w = placed[j].job;
                    if (w.submitSec <= t &&
                        t < w.submitSec + w.durationSec)
                        active.push_back(j);
                }
                if (active.empty())
                    continue;

                sim::Cluster host(1, 16, 2);
                sim::Tenant bolt_vm{host.nextTenantId(), 4, true};
                host.placeOn(0, bolt_vm);
                std::map<size_t, sim::TenantId> ids;
                for (size_t j : active) {
                    sim::Tenant tnt{host.nextTenantId(),
                                    placed[j].job.spec.vcpus, false};
                    if (host.placeOn(0, tnt))
                        ids[j] = tnt.id;
                }
                core::HostEnvironment env;
                env.server = &host.server(0);
                env.adversary = bolt_vm.id;
                env.contention = &contention;
                env.pressureAt = [&](double when) {
                    sim::PressureMap pm;
                    for (const auto& [j, id] : ids)
                        pm[id] = placed[j].app.pressureAt(when);
                    return pm;
                };
                auto round = detector.detectOnce(
                    env, t, drng, nullptr, detect_round++);
                for (const auto& [j, id] : ids) {
                    auto& p = placed[j];
                    if (core::roundMatchesClass(round, p.job.spec) &&
                        p.job.spec.labeledInTraining) {
                        p.labelCorrect = true;
                    }
                    if (core::roundMatchesCharacteristics(round,
                                                          p.job.spec))
                        p.charCorrect = true;
                }
            }
        }
    }

    size_t labeled = 0, chars = 0, unused = 0;
    std::map<int, std::pair<size_t, size_t>> by_active;
    for (const auto& p : placed) {
        labeled += p.labelCorrect ? 1 : 0;
        chars += p.charCorrect ? 1 : 0;
    }
    for (size_t i = 0; i < kInstances; ++i)
        unused += on_instance[i].empty() ? 1 : 0;

    // Figure 12c: concurrently-active jobs per instance sampled hourly.
    util::Summary active_stats;
    int max_active = 0;
    for (size_t i = 0; i < kInstances; ++i) {
        for (double t = 0; t < 4 * 3600.0; t += 1800.0) {
            int active = 0;
            for (size_t idx : on_instance[i]) {
                const auto& w = placed[idx].job;
                active += w.submitSec <= t &&
                                  t < w.submitSec + w.durationSec
                              ? 1
                              : 0;
            }
            if (!on_instance[i].empty())
                active_stats.add(active);
            max_active = std::max(max_active, active);
        }
    }

    std::cout << "== Figure 12: user-study detection ==\n";
    util::AsciiTable table({"Metric", "Measured", "Paper"});
    table.addRow({"Jobs submitted", std::to_string(placed.size()),
                  "436"});
    table.addRow({"Correctly labeled by name (12a)",
                  std::to_string(labeled), "277"});
    table.addRow({"Correct resource characteristics (12b)",
                  std::to_string(chars), "385"});
    table.addRow({"Unused instances (12c)", std::to_string(unused),
                  "14"});
    table.addRow({"Max concurrently-active jobs/instance",
                  std::to_string(max_active), "~6"});
    table.print(std::cout);

    std::cout << "\nLabel accuracy "
              << util::AsciiTable::percent(
                     static_cast<double>(labeled) / placed.size())
              << " (paper 63.5%), characteristics "
              << util::AsciiTable::percent(
                     static_cast<double>(chars) / placed.size())
              << " (paper 88.3%)\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 5: star charts of two Hadoop jobs with very
 * different resource profiles — word count on a small dataset and a
 * recommender on a very large one — plus an unknown application the
 * recommender matches to the latter (paper: similarity 0.29 vs 0.78).
 */
#include <iomanip>
#include <iostream>

#include "obs/report.h"
#include "core/recommender.h"
#include "util/table.h"
#include "workloads/generators.h"

using namespace bolt;

namespace {

void
starChart(const char* title, const sim::ResourceVector& profile)
{
    std::cout << "## " << title << "\n";
    for (sim::Resource r : sim::kAllResources) {
        int stars = static_cast<int>(profile[r] / 5.0);
        std::cout << "  " << std::left << std::setw(8)
                  << sim::resourceName(r) << " |"
                  << std::string(static_cast<size_t>(stars), '*')
                  << std::string(static_cast<size_t>(20 - stars), ' ')
                  << "| " << util::AsciiTable::num(profile[r], 0) << "\n";
    }
}

} // namespace

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::Rng rng(55);
    util::Rng tr = rng.substream("train");
    auto train_specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(train_specs, tr);
    core::HybridRecommender recommender(training);

    const auto* hadoop = workloads::findFamily("hadoop");
    const workloads::VariantDef* wordcount = nullptr;
    const workloads::VariantDef* recommender_app = nullptr;
    for (const auto& v : hadoop->variants) {
        if (v.name == "wordcount")
            wordcount = &v;
        if (v.name == "recommender")
            recommender_app = &v;
    }

    util::Rng inst = rng.substream("inst");
    auto wc = workloads::instantiate(*hadoop, *wordcount, "S", inst);
    auto rec = workloads::instantiate(*hadoop, *recommender_app, "L",
                                      inst);

    std::cout << "== Figure 5: per-application profiles within one "
                 "framework ==\n";
    starChart("Hadoop : wordCount : S", wc.base);
    starChart("Hadoop : recommender : L", rec.base);

    // The unknown app: another large-dataset Hadoop recommender run
    // with its own jitter.
    auto unknown = workloads::instantiate(*hadoop, *recommender_app, "L",
                                          inst);
    unknown.pattern = workloads::LoadPattern::constant(0.95);
    workloads::AppInstance instance(unknown, inst.substream("u"));
    auto observed = instance.pressureAt(30.0);
    starChart("New unknown app (observed)", observed);

    // Score the unknown profile against both reference jobs through the
    // recommender's similarity machinery.
    core::SparseObservation obs;
    sim::IsolationConfig channel =
        sim::IsolationConfig::none(sim::Platform::VirtualMachine);
    for (sim::Resource r : sim::kAllResources)
        obs.set(r, observed[r] * channel.crossVisibility(r));
    auto result = recommender.analyze(obs);

    double sim_wc = 0.0, sim_rec = 0.0;
    for (const auto& [idx, score] : result.ranking) {
        const auto& e = training.entry(idx);
        if (e.classLabel() == "hadoop:wordcount")
            sim_wc = std::max(sim_wc, score);
        if (e.classLabel() == "hadoop:recommender")
            sim_rec = std::max(sim_rec, score);
    }
    std::cout << "\nSimilarity to hadoop:wordcount   = "
              << util::AsciiTable::num(sim_wc, 2)
              << "  (paper: 0.29)\n";
    std::cout << "Similarity to hadoop:recommender = "
              << util::AsciiTable::num(sim_rec, 2)
              << "  (paper: 0.78)\n";
    std::cout << "Top match: "
              << training.entry(result.ranking.front().first).classLabel()
              << "\n";
    return sim_rec > sim_wc ? 0 : 1;
}

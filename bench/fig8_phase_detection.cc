/**
 * @file
 * Reproduces Figure 8: workload phase detection over time. One 4-vCPU
 * victim instance runs five consecutive jobs (SPEC mcf, a Mahout-style
 * Hadoop SVM, Spark data mining, memcached, Cassandra); Bolt re-detects
 * every 20 seconds and captures each change within a few seconds.
 */
#include <iostream>

#include "obs/report.h"
#include "core/detector.h"
#include "core/experiment.h"
#include "sim/cluster.h"
#include "util/table.h"
#include "workloads/generators.h"

using namespace bolt;

int
main(int argc, char** argv)
{
    if (!obs::applyObsFlags(argc, argv))
        return 2;
    util::Rng rng(88);
    util::Rng tr = rng.substream("train");
    auto train_specs = workloads::trainingSet(tr);
    auto training = core::TrainingSet::fromSpecs(train_specs, tr);
    core::HybridRecommender recommender(training);
    core::Detector detector(recommender);

    auto victim = workloads::phasedVictim(rng, 80.0);

    sim::Cluster cluster(1);
    sim::Tenant adversary{cluster.nextTenantId(), 4, true};
    cluster.placeOn(0, adversary);
    sim::Tenant tenant{cluster.nextTenantId(), 4, false};
    cluster.placeOn(0, tenant);

    // A fresh AppInstance per phase, but one tenant id throughout (the
    // instance runs different consecutive jobs, §3.4).
    util::Rng inst_rng = rng.substream("inst");
    std::vector<workloads::AppInstance> instances;
    for (const auto& spec : victim.phases)
        instances.emplace_back(
            spec, inst_rng.substream("p", instances.size()));

    sim::ContentionModel contention(cluster.isolation());
    core::HostEnvironment env;
    env.server = &cluster.server(0);
    env.adversary = adversary.id;
    env.contention = &contention;
    env.pressureAt = [&](double t) {
        auto idx = std::min(
            victim.phases.size() - 1,
            static_cast<size_t>(std::max(0.0, t) / victim.phaseSec));
        sim::PressureMap pm;
        pm[tenant.id] = instances[idx].pressureAt(t);
        return pm;
    };

    std::cout << "== Figure 8: phase detection timeline (detection every "
                 "20 s; phases change every 80 s) ==\n";
    util::AsciiTable table({"t (s)", "true phase", "detected",
                            "similarity", "correct"});
    util::Rng drng = rng.substream("detect");
    int correct = 0, total = 0;
    int detect_round = 0;
    int phase_changes_caught = 0;
    std::string last_detected;
    for (double t = 0.0; t < victim.totalSec(); t += 20.0) {
        auto round = detector.detectOnce(env, t, drng, nullptr,
                                         detect_round++);
        const auto& truth = victim.at(t);
        std::string detected = round.topClass();
        double similarity =
            round.guesses.empty() ? 0.0 : round.guesses.front().similarity;
        bool ok = core::roundMatchesClass(round, truth);
        correct += ok ? 1 : 0;
        ++total;
        table.addRow({util::AsciiTable::num(t, 0), truth.classLabel(),
                      detected.empty() ? "(none)" : detected,
                      util::AsciiTable::num(similarity, 2),
                      ok ? "yes" : "no"});
        if (detected != last_detected && !detected.empty()) {
            last_detected = detected;
            ++phase_changes_caught;
        }
    }
    table.print(std::cout);
    std::cout << "\nTimeline accuracy: "
              << util::AsciiTable::percent(
                     static_cast<double>(correct) / total)
              << " over " << total << " detection rounds; detected label "
              << "changed " << phase_changes_caught
              << " times across 5 phases\n";
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/dos_attack_demo.dir/dos_attack_demo.cpp.o"
  "CMakeFiles/dos_attack_demo.dir/dos_attack_demo.cpp.o.d"
  "dos_attack_demo"
  "dos_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dos_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

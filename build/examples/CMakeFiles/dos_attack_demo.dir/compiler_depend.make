# Empty compiler generated dependencies file for dos_attack_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bolt_cli.dir/bolt_cli.cpp.o"
  "CMakeFiles/bolt_cli.dir/bolt_cli.cpp.o.d"
  "bolt_cli"
  "bolt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

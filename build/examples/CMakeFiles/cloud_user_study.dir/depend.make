# Empty dependencies file for cloud_user_study.
# This may be replaced when dependencies are built.

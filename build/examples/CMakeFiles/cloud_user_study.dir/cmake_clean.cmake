file(REMOVE_RECURSE
  "CMakeFiles/cloud_user_study.dir/cloud_user_study.cpp.o"
  "CMakeFiles/cloud_user_study.dir/cloud_user_study.cpp.o.d"
  "cloud_user_study"
  "cloud_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bolt_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bolt_core.dir/detector.cc.o"
  "CMakeFiles/bolt_core.dir/detector.cc.o.d"
  "CMakeFiles/bolt_core.dir/experiment.cc.o"
  "CMakeFiles/bolt_core.dir/experiment.cc.o.d"
  "CMakeFiles/bolt_core.dir/microbench.cc.o"
  "CMakeFiles/bolt_core.dir/microbench.cc.o.d"
  "CMakeFiles/bolt_core.dir/observation.cc.o"
  "CMakeFiles/bolt_core.dir/observation.cc.o.d"
  "CMakeFiles/bolt_core.dir/profiler.cc.o"
  "CMakeFiles/bolt_core.dir/profiler.cc.o.d"
  "CMakeFiles/bolt_core.dir/recommender.cc.o"
  "CMakeFiles/bolt_core.dir/recommender.cc.o.d"
  "CMakeFiles/bolt_core.dir/training.cc.o"
  "CMakeFiles/bolt_core.dir/training.cc.o.d"
  "libbolt_core.a"
  "libbolt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/bolt_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/bolt_core.dir/detector.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/bolt_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/bolt_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/microbench.cc" "src/core/CMakeFiles/bolt_core.dir/microbench.cc.o" "gcc" "src/core/CMakeFiles/bolt_core.dir/microbench.cc.o.d"
  "/root/repo/src/core/observation.cc" "src/core/CMakeFiles/bolt_core.dir/observation.cc.o" "gcc" "src/core/CMakeFiles/bolt_core.dir/observation.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/bolt_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/bolt_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/core/CMakeFiles/bolt_core.dir/recommender.cc.o" "gcc" "src/core/CMakeFiles/bolt_core.dir/recommender.cc.o.d"
  "/root/repo/src/core/training.cc" "src/core/CMakeFiles/bolt_core.dir/training.cc.o" "gcc" "src/core/CMakeFiles/bolt_core.dir/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bolt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bolt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bolt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bolt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

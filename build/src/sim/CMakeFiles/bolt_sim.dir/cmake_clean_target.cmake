file(REMOVE_RECURSE
  "libbolt_sim.a"
)

# Empty compiler generated dependencies file for bolt_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bolt_sim.dir/cluster.cc.o"
  "CMakeFiles/bolt_sim.dir/cluster.cc.o.d"
  "CMakeFiles/bolt_sim.dir/contention.cc.o"
  "CMakeFiles/bolt_sim.dir/contention.cc.o.d"
  "CMakeFiles/bolt_sim.dir/isolation.cc.o"
  "CMakeFiles/bolt_sim.dir/isolation.cc.o.d"
  "CMakeFiles/bolt_sim.dir/resource.cc.o"
  "CMakeFiles/bolt_sim.dir/resource.cc.o.d"
  "CMakeFiles/bolt_sim.dir/server.cc.o"
  "CMakeFiles/bolt_sim.dir/server.cc.o.d"
  "libbolt_sim.a"
  "libbolt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/bolt_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/bolt_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/contention.cc" "src/sim/CMakeFiles/bolt_sim.dir/contention.cc.o" "gcc" "src/sim/CMakeFiles/bolt_sim.dir/contention.cc.o.d"
  "/root/repo/src/sim/isolation.cc" "src/sim/CMakeFiles/bolt_sim.dir/isolation.cc.o" "gcc" "src/sim/CMakeFiles/bolt_sim.dir/isolation.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/sim/CMakeFiles/bolt_sim.dir/resource.cc.o" "gcc" "src/sim/CMakeFiles/bolt_sim.dir/resource.cc.o.d"
  "/root/repo/src/sim/server.cc" "src/sim/CMakeFiles/bolt_sim.dir/server.cc.o" "gcc" "src/sim/CMakeFiles/bolt_sim.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

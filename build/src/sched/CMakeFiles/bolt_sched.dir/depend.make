# Empty dependencies file for bolt_sched.
# This may be replaced when dependencies are built.

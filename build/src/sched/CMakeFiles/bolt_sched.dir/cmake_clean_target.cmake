file(REMOVE_RECURSE
  "libbolt_sched.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bolt_sched.dir/scheduler.cc.o"
  "CMakeFiles/bolt_sched.dir/scheduler.cc.o.d"
  "libbolt_sched.a"
  "libbolt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbolt_attacks.a"
)

# Empty dependencies file for bolt_attacks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bolt_attacks.dir/coresidency.cc.o"
  "CMakeFiles/bolt_attacks.dir/coresidency.cc.o.d"
  "CMakeFiles/bolt_attacks.dir/dos.cc.o"
  "CMakeFiles/bolt_attacks.dir/dos.cc.o.d"
  "CMakeFiles/bolt_attacks.dir/rfa.cc.o"
  "CMakeFiles/bolt_attacks.dir/rfa.cc.o.d"
  "libbolt_attacks.a"
  "libbolt_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/app.cc" "src/workloads/CMakeFiles/bolt_workloads.dir/app.cc.o" "gcc" "src/workloads/CMakeFiles/bolt_workloads.dir/app.cc.o.d"
  "/root/repo/src/workloads/catalog.cc" "src/workloads/CMakeFiles/bolt_workloads.dir/catalog.cc.o" "gcc" "src/workloads/CMakeFiles/bolt_workloads.dir/catalog.cc.o.d"
  "/root/repo/src/workloads/generators.cc" "src/workloads/CMakeFiles/bolt_workloads.dir/generators.cc.o" "gcc" "src/workloads/CMakeFiles/bolt_workloads.dir/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bolt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

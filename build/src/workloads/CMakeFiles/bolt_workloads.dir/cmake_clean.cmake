file(REMOVE_RECURSE
  "CMakeFiles/bolt_workloads.dir/app.cc.o"
  "CMakeFiles/bolt_workloads.dir/app.cc.o.d"
  "CMakeFiles/bolt_workloads.dir/catalog.cc.o"
  "CMakeFiles/bolt_workloads.dir/catalog.cc.o.d"
  "CMakeFiles/bolt_workloads.dir/generators.cc.o"
  "CMakeFiles/bolt_workloads.dir/generators.cc.o.d"
  "libbolt_workloads.a"
  "libbolt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bolt_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbolt_workloads.a"
)

file(REMOVE_RECURSE
  "libbolt_linalg.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bolt_linalg.dir/matrix.cc.o"
  "CMakeFiles/bolt_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/bolt_linalg.dir/sgd.cc.o"
  "CMakeFiles/bolt_linalg.dir/sgd.cc.o.d"
  "CMakeFiles/bolt_linalg.dir/svd.cc.o"
  "CMakeFiles/bolt_linalg.dir/svd.cc.o.d"
  "libbolt_linalg.a"
  "libbolt_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

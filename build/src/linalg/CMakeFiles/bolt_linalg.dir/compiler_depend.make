# Empty compiler generated dependencies file for bolt_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bolt_util.dir/rng.cc.o"
  "CMakeFiles/bolt_util.dir/rng.cc.o.d"
  "CMakeFiles/bolt_util.dir/stats.cc.o"
  "CMakeFiles/bolt_util.dir/stats.cc.o.d"
  "CMakeFiles/bolt_util.dir/table.cc.o"
  "CMakeFiles/bolt_util.dir/table.cc.o.d"
  "libbolt_util.a"
  "libbolt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig7_iterations_pdf.dir/fig7_iterations_pdf.cc.o"
  "CMakeFiles/fig7_iterations_pdf.dir/fig7_iterations_pdf.cc.o.d"
  "fig7_iterations_pdf"
  "fig7_iterations_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_iterations_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

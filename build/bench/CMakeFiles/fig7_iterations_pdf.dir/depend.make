# Empty dependencies file for fig7_iterations_pdf.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig12_user_study_detection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig12_user_study_detection.dir/fig12_user_study_detection.cc.o"
  "CMakeFiles/fig12_user_study_detection.dir/fig12_user_study_detection.cc.o.d"
  "fig12_user_study_detection"
  "fig12_user_study_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_user_study_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig4_training_coverage.dir/fig4_training_coverage.cc.o"
  "CMakeFiles/fig4_training_coverage.dir/fig4_training_coverage.cc.o.d"
  "fig4_training_coverage"
  "fig4_training_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_training_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

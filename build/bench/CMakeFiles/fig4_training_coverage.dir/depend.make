# Empty dependencies file for fig4_training_coverage.
# This may be replaced when dependencies are built.

# Empty dependencies file for perf_recommender.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/perf_recommender.dir/perf_recommender.cc.o"
  "CMakeFiles/perf_recommender.dir/perf_recommender.cc.o.d"
  "perf_recommender"
  "perf_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

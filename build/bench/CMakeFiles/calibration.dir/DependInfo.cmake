
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/calibration.cc" "bench/CMakeFiles/calibration.dir/calibration.cc.o" "gcc" "bench/CMakeFiles/calibration.dir/calibration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bolt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bolt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bolt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bolt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bolt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig6_coresidents_dominant.dir/fig6_coresidents_dominant.cc.o"
  "CMakeFiles/fig6_coresidents_dominant.dir/fig6_coresidents_dominant.cc.o.d"
  "fig6_coresidents_dominant"
  "fig6_coresidents_dominant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_coresidents_dominant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_coresidents_dominant.
# This may be replaced when dependencies are built.

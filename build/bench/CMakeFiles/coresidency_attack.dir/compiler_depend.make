# Empty compiler generated dependencies file for coresidency_attack.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coresidency_attack.dir/coresidency_attack.cc.o"
  "CMakeFiles/coresidency_attack.dir/coresidency_attack.cc.o.d"
  "coresidency_attack"
  "coresidency_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coresidency_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_detection_accuracy.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig8_phase_detection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8_phase_detection.dir/fig8_phase_detection.cc.o"
  "CMakeFiles/fig8_phase_detection.dir/fig8_phase_detection.cc.o.d"
  "fig8_phase_detection"
  "fig8_phase_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_phase_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig14_isolation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig14_isolation.dir/fig14_isolation.cc.o"
  "CMakeFiles/fig14_isolation.dir/fig14_isolation.cc.o.d"
  "fig14_isolation"
  "fig14_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig5_star_charts.dir/fig5_star_charts.cc.o"
  "CMakeFiles/fig5_star_charts.dir/fig5_star_charts.cc.o.d"
  "fig5_star_charts"
  "fig5_star_charts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_star_charts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig9_accuracy_vs_pressure.dir/fig9_accuracy_vs_pressure.cc.o"
  "CMakeFiles/fig9_accuracy_vs_pressure.dir/fig9_accuracy_vs_pressure.cc.o.d"
  "fig9_accuracy_vs_pressure"
  "fig9_accuracy_vs_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_accuracy_vs_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table2_rfa.
# This may be replaced when dependencies are built.

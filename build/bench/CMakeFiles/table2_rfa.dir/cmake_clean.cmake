file(REMOVE_RECURSE
  "CMakeFiles/table2_rfa.dir/table2_rfa.cc.o"
  "CMakeFiles/table2_rfa.dir/table2_rfa.cc.o.d"
  "table2_rfa"
  "table2_rfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_rfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

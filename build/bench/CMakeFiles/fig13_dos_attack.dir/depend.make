# Empty dependencies file for fig13_dos_attack.
# This may be replaced when dependencies are built.

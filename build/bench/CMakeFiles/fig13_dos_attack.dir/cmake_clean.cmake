file(REMOVE_RECURSE
  "CMakeFiles/fig13_dos_attack.dir/fig13_dos_attack.cc.o"
  "CMakeFiles/fig13_dos_attack.dir/fig13_dos_attack.cc.o.d"
  "fig13_dos_attack"
  "fig13_dos_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dos_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig10_sensitivity.dir/fig10_sensitivity.cc.o"
  "CMakeFiles/fig10_sensitivity.dir/fig10_sensitivity.cc.o.d"
  "fig10_sensitivity"
  "fig10_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

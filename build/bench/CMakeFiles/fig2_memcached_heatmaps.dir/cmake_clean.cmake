file(REMOVE_RECURSE
  "CMakeFiles/fig2_memcached_heatmaps.dir/fig2_memcached_heatmaps.cc.o"
  "CMakeFiles/fig2_memcached_heatmaps.dir/fig2_memcached_heatmaps.cc.o.d"
  "fig2_memcached_heatmaps"
  "fig2_memcached_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_memcached_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

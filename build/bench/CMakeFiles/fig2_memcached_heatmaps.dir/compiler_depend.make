# Empty compiler generated dependencies file for fig2_memcached_heatmaps.
# This may be replaced when dependencies are built.

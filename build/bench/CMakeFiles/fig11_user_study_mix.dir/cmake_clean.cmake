file(REMOVE_RECURSE
  "CMakeFiles/fig11_user_study_mix.dir/fig11_user_study_mix.cc.o"
  "CMakeFiles/fig11_user_study_mix.dir/fig11_user_study_mix.cc.o.d"
  "fig11_user_study_mix"
  "fig11_user_study_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_user_study_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

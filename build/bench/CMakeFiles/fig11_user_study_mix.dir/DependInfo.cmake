
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_user_study_mix.cc" "bench/CMakeFiles/fig11_user_study_mix.dir/fig11_user_study_mix.cc.o" "gcc" "bench/CMakeFiles/fig11_user_study_mix.dir/fig11_user_study_mix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/bolt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bolt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fig11_user_study_mix.
# This may be replaced when dependencies are built.

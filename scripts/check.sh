#!/usr/bin/env bash
# Full verification: build + ctest in the plain configuration, then
# again under ThreadSanitizer (BOLT_SANITIZE=thread) to vet the thread
# pool and the parallel experiment engine.
#
# Usage: scripts/check.sh [--plain-only|--tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."

run_config() {
    local dir="$1"
    shift
    echo "== Configuring ${dir} ($*) =="
    cmake -B "${dir}" -S . "$@"
    echo "== Building ${dir} =="
    cmake --build "${dir}" -j "$(nproc)"
    echo "== Testing ${dir} =="
    ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

mode="${1:-all}"

if [[ "${mode}" != "--tsan-only" ]]; then
    run_config build
fi

if [[ "${mode}" != "--plain-only" ]]; then
    # TSan slows execution ~5-15x; the suite still finishes in minutes.
    run_config build-tsan -DBOLT_SANITIZE=thread
fi

echo "All checks passed."

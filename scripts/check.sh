#!/usr/bin/env bash
# Full verification: build + ctest in the plain configuration, then
# again under ThreadSanitizer (BOLT_SANITIZE=thread) to vet the thread
# pool and the parallel experiment engine. Finally a Release build runs
# the recommender query-path benchmark, which fails if its output
# digest diverges from the committed golden (bench/BENCH_recommender.golden)
# and writes throughput/latency numbers to BENCH_recommender.json.
#
# The --obs stage asserts the observability contract: running the same
# experiment with metrics+tracing enabled vs disabled, at 1 and 8
# threads, must produce byte-identical stdout (including the result
# digest), while the emitted metrics/trace files must be valid JSON.
#
# The --fault stage asserts the fault-injection determinism contract:
# a faulted experiment (tenant churn + measurement faults) must produce
# byte-identical stdout at 1 and 8 threads, and the churn-robustness
# figure must reproduce bench/BENCH_fig15_churn.golden bit-for-bit.
#
# The --serve stage asserts the serving-layer determinism contract:
# `bolt_cli serve-bench` stdout must be byte-identical at 1 and 8
# worker threads (open and closed loop), the perf_serving
# throughput-latency sweep must reproduce bench/BENCH_serving.golden
# bit-for-bit at both thread counts, and malformed numeric flags must
# be rejected with exit 2.
#
# The --scenario stage asserts the scenario-compiler contract: every
# scenarios/*.scn runs to byte-identical stdout at 1 and 8 threads and
# matches its committed golden in scenarios/golden/, the canonical dump
# round-trips through the compiler, and malformed scenario files are
# rejected with a line-numbered diagnostic and exit 2. Pass --update
# after --scenario to regenerate the goldens instead of diffing them.
#
# The --telemetry stage asserts the telemetry-pipeline contract:
# enabling --telemetry-out must not change run stdout (telemetry
# observes, it never perturbs), the JSONL dump must be byte-identical
# at 1 and 8 threads, `bolt_cli report` must render it, a failing
# `expect:` must exit 3 with a file:line message, and the perf_serving
# --json probe must show <5% saturation wall-QPS overhead.
#
# The --fleet stage asserts the fleet-sharding determinism contract:
# `bolt_cli fleet` stdout must be byte-identical at 1 and 8 threads,
# the run digest must be identical at 1 and 16 shards (only the
# cross-shard migration statistic may move), the perf_fleet_scaling
# sweep must reproduce bench/BENCH_fleet_scaling.golden bit-for-bit at
# both thread counts (the binary self-checks 16-shard/8-thread vs
# 1-shard/1-thread digests and exits 1 on mismatch), and malformed
# flags must be rejected with exit 2. Pass --update after --fleet to
# regenerate the golden instead of diffing it.
#
# The --armsrace stage asserts the placement-arms-race contract:
# `bolt_cli arms-race` stdout must be byte-identical at 1 and 8
# threads with its self-check gates passing (exit 0), malformed flags
# must be rejected with exit 2, and the coloc_arms_race bench — the
# full tournament plus the fleet duel, self-checked for defense
# effectiveness and 16-shard digest invariance — must reproduce
# bench/BENCH_coloc_arms_race.golden bit-for-bit at both thread
# counts. Pass --update after --armsrace to regenerate the golden
# instead of diffing it.
#
# The --simd stage asserts the kernel-backend determinism contract: a
# Release build with -DBOLT_SIMD=ON must pass its test suite (including
# the scalar-vs-AVX2 bit-equality tests in tests/test_kernels.cc) and
# must reproduce the scalar build's perf_recommender digest and
# perf_serving sweep byte-for-byte. On hardware without AVX2 the SIMD
# build falls back to the scalar backend and the gate still holds.
#
# Usage: scripts/check.sh [--plain-only|--tsan-only|--obs|--fault|--serve|--scenario [--update]|--telemetry|--fleet [--update]|--armsrace [--update]|--simd|--bench-only]
set -euo pipefail

cd "$(dirname "$0")/.."

run_config() {
    local dir="$1"
    shift
    echo "== Configuring ${dir} ($*) =="
    cmake -B "${dir}" -S . "$@"
    echo "== Building ${dir} =="
    cmake --build "${dir}" -j "$(nproc)"
    echo "== Testing ${dir} =="
    ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

mode="${1:-all}"

if [[ "${mode}" == "--plain-only" || "${mode}" == "all" ]]; then
    run_config build
fi

if [[ "${mode}" == "--tsan-only" || "${mode}" == "all" ]]; then
    # TSan slows execution ~5-15x; the suite still finishes in minutes.
    run_config build-tsan -DBOLT_SANITIZE=thread
fi

if [[ "${mode}" == "--obs" || "${mode}" == "all" ]]; then
    echo "== Observability inertness gate =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target bolt_cli
    obs_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir}"' EXIT
    cli=./build/examples/bolt_cli
    exp_flags=(experiment --servers 8 --victims 20 --seed 7)

    for threads in 1 8; do
        echo "-- threads=${threads}: obs off vs on --"
        "${cli}" "${exp_flags[@]}" --threads "${threads}" \
            > "${obs_dir}/off_${threads}.txt"
        "${cli}" "${exp_flags[@]}" --threads "${threads}" \
            --metrics-out "${obs_dir}/m_${threads}.json" \
            --trace-out "${obs_dir}/t_${threads}.json" \
            --log-level error \
            > "${obs_dir}/on_${threads}.txt"
        if ! diff -u "${obs_dir}/off_${threads}.txt" \
                     "${obs_dir}/on_${threads}.txt"; then
            echo "FAIL: enabling observability changed experiment output" \
                 "at threads=${threads}" >&2
            exit 1
        fi
        # The emitted files must be valid JSON with the expected roots.
        python3 - "${obs_dir}/m_${threads}.json" \
                  "${obs_dir}/t_${threads}.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["bolt_run_report"] == 1, "missing RunReport marker"
assert report["command"] == "experiment", report["command"]
assert report["metrics"]["counters"]["detector.rounds"] > 0
trace = json.load(open(sys.argv[2]))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"]
assert any(e["name"] == "detector.round" for e in trace["traceEvents"])
EOF
    done

    # The run itself is thread-count invariant (digest printed in stdout).
    if ! diff -u "${obs_dir}/off_1.txt" "${obs_dir}/off_8.txt"; then
        echo "FAIL: experiment output differs between 1 and 8 threads" >&2
        exit 1
    fi
    # The trace export must also be byte-identical across thread counts.
    if ! diff -u "${obs_dir}/t_1.json" "${obs_dir}/t_8.json"; then
        echo "FAIL: trace export differs between 1 and 8 threads" >&2
        exit 1
    fi
    # Strict flag parsing: unknown flags must be rejected.
    if "${cli}" experiment --no-such-flag >/dev/null 2>&1; then
        echo "FAIL: bolt_cli accepted an unknown flag" >&2
        exit 1
    fi
    echo "Observability gate passed."
fi

if [[ "${mode}" == "--fault" || "${mode}" == "all" ]]; then
    echo "== Fault-injection determinism gate =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target bolt_cli fig15_churn_robustness
    fault_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir:-}" "${fault_dir:-}"' EXIT
    cli=./build/examples/bolt_cli
    fault_flags=(experiment --servers 12 --victims 30 --seed 42
                 --fault-arrivals 0.1 --fault-departures 0.08
                 --fault-phase-flips 0.1 --fault-dropouts 0.15
                 --fault-spikes 0.05 --fault-jitter 0.05
                 --log-level error)

    # A nontrivial fault plan must be thread-count invariant: churn,
    # dropouts and retries all draw from counter-based streams keyed by
    # (server, round), never from execution order.
    "${cli}" "${fault_flags[@]}" --threads 1 > "${fault_dir}/f_1.txt"
    "${cli}" "${fault_flags[@]}" --threads 8 > "${fault_dir}/f_8.txt"
    if ! diff -u "${fault_dir}/f_1.txt" "${fault_dir}/f_8.txt"; then
        echo "FAIL: faulted experiment output differs between 1 and 8" \
             "threads" >&2
        exit 1
    fi

    # Strict flag validation: modifiers without a fault rate are an
    # error (exit 2), not a silent unfaulted run.
    if "${cli}" experiment --fault-seed 7 >/dev/null 2>&1; then
        echo "FAIL: bolt_cli accepted --fault-seed with no fault enabled" >&2
        exit 1
    fi

    # The churn-robustness figure must reproduce the committed golden
    # bit-for-bit, at both thread counts.
    for threads in 1 8; do
        ./build/bench/fig15_churn_robustness --threads "${threads}" \
            > "${fault_dir}/fig15_${threads}.txt"
        if ! diff -u bench/BENCH_fig15_churn.golden \
                     "${fault_dir}/fig15_${threads}.txt"; then
            echo "FAIL: fig15 output diverged from golden at" \
                 "threads=${threads}" >&2
            exit 1
        fi
    done
    echo "Fault-injection gate passed."
fi

if [[ "${mode}" == "--serve" || "${mode}" == "all" ]]; then
    echo "== Serving determinism gate =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target bolt_cli
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-release -j "$(nproc)" --target perf_serving
    serve_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir:-}" "${fault_dir:-}" "${serve_dir:-}"' EXIT
    cli=./build/examples/bolt_cli

    # The Sim-plane serving stats (admissions, sheds, batches, latency
    # percentiles, digest) are decided by a sequential event loop; the
    # worker pool only executes already-formed batches. Output must be
    # byte-identical at any thread count, open and closed loop.
    open_flags=(serve-bench --requests 1500 --qps 2500
                --decompose-frac 0.2 --seed 11 --log-level error)
    closed_flags=(serve-bench --requests 1000 --closed-loop --clients 32
                  --think-ms 2 --seed 12 --log-level error)
    for loop in open closed; do
        flags_var="${loop}_flags[@]"
        for threads in 1 8; do
            "${cli}" "${!flags_var}" --threads "${threads}" \
                > "${serve_dir}/${loop}_${threads}.txt"
        done
        if ! diff -u "${serve_dir}/${loop}_1.txt" \
                     "${serve_dir}/${loop}_8.txt"; then
            echo "FAIL: ${loop}-loop serve-bench output differs between" \
                 "1 and 8 threads" >&2
            exit 1
        fi
    done

    # Strict numeric flag validation: trailing garbage and out-of-range
    # values must exit 2 (usage error), never fall back to a default.
    for bad in "--requests 10x" "--threads 99999" "--no-such-flag 1"; do
        rc=0
        # shellcheck disable=SC2086  # word splitting is intentional
        "${cli}" serve-bench ${bad} >/dev/null 2>&1 || rc=$?
        if [[ "${rc}" != 2 ]]; then
            echo "FAIL: 'serve-bench ${bad}' exited ${rc}, expected 2" >&2
            exit 1
        fi
    done

    # The throughput-latency sweep must reproduce the committed golden
    # bit-for-bit at both thread counts (Release build, same as the
    # golden was generated from).
    for threads in 1 8; do
        ./build-release/bench/perf_serving --threads "${threads}" \
            > "${serve_dir}/sweep_${threads}.txt"
        if ! diff -u bench/BENCH_serving.golden \
                     "${serve_dir}/sweep_${threads}.txt"; then
            echo "FAIL: perf_serving output diverged from golden at" \
                 "threads=${threads}" >&2
            exit 1
        fi
    done
    echo "Serving gate passed."
fi

if [[ "${mode}" == "--scenario" || "${mode}" == "all" ]]; then
    echo "== Scenario library gate =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target bolt_cli
    scn_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir:-}" "${fault_dir:-}" "${serve_dir:-}" "${scn_dir:-}"' EXIT
    cli=./build/examples/bolt_cli
    update_goldens=0
    [[ "${2:-}" == "--update" ]] && update_goldens=1

    for scn in scenarios/*.scn; do
        name="$(basename "${scn}" .scn)"
        golden="scenarios/golden/${name}.golden"
        echo "-- ${name} --"
        # Thread-count invariance: the whole stdout, not just the digest.
        "${cli}" run --scenario "${scn}" --threads 1 \
            > "${scn_dir}/${name}_1.txt"
        "${cli}" run --scenario "${scn}" --threads 8 \
            > "${scn_dir}/${name}_8.txt"
        if ! diff -u "${scn_dir}/${name}_1.txt" \
                     "${scn_dir}/${name}_8.txt"; then
            echo "FAIL: ${name} output differs between 1 and 8 threads" >&2
            exit 1
        fi
        if [[ "${update_goldens}" == 1 ]]; then
            cp "${scn_dir}/${name}_1.txt" "${golden}"
            continue
        fi
        if ! diff -u "${golden}" "${scn_dir}/${name}_1.txt"; then
            echo "FAIL: ${name} output diverged from ${golden}" \
                 "(regenerate intentionally with --scenario --update)" >&2
            exit 1
        fi
        # The canonical dump must recompile to an identical dump. Dump
        # into the scenarios/ dir namespace so includes resolve.
        "${cli}" run --scenario "${scn}" --dump \
            > "scenarios/${name}.roundtrip.scn"
        "${cli}" run --scenario "scenarios/${name}.roundtrip.scn" --dump \
            > "${scn_dir}/${name}_dump2.txt"
        rt_ok=0
        diff -u "scenarios/${name}.roundtrip.scn" \
                "${scn_dir}/${name}_dump2.txt" || rt_ok=$?
        rm -f "scenarios/${name}.roundtrip.scn"
        if [[ "${rt_ok}" != 0 ]]; then
            echo "FAIL: ${name} canonical dump did not round-trip" >&2
            exit 1
        fi
    done

    # Malformed scenarios must exit 2 with a line-numbered diagnostic.
    printf 'scenario: bad\nstages:\n  - stage: experiment\n    serveurs: 9\n' \
        > "${scn_dir}/bad.scn"
    for bad in "" \
               "--scenario ${scn_dir}/does_not_exist.scn" \
               "--scenario ${scn_dir}/bad.scn"; do
        rc=0
        # shellcheck disable=SC2086  # word splitting is intentional
        "${cli}" run ${bad} >/dev/null 2>"${scn_dir}/bad_err.txt" || rc=$?
        if [[ "${rc}" != 2 ]]; then
            echo "FAIL: 'run ${bad}' exited ${rc}, expected 2" >&2
            exit 1
        fi
    done
    # (the last loop iteration left the diagnostic in bad_err.txt)
    if ! grep -q "bad.scn:4: unknown key 'serveurs'" \
            "${scn_dir}/bad_err.txt"; then
        echo "FAIL: malformed scenario diagnostic lost its file:line" >&2
        exit 1
    fi
    echo "Scenario gate passed."
fi

if [[ "${mode}" == "--telemetry" || "${mode}" == "all" ]]; then
    echo "== Telemetry pipeline gate =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target bolt_cli
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-release -j "$(nproc)" --target perf_serving
    tel_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir:-}" "${fault_dir:-}" "${serve_dir:-}" "${scn_dir:-}" "${tel_dir:-}"' EXIT
    cli=./build/examples/bolt_cli

    # Telemetry inertness: the same scenario run with and without a
    # telemetry dump must produce byte-identical stdout (the recorder
    # observes the decision plane, it never perturbs it).
    scn=scenarios/flash_crowd.scn
    "${cli}" run --scenario "${scn}" > "${tel_dir}/plain.txt"
    "${cli}" run --scenario "${scn}" \
        --telemetry-out "${tel_dir}/t_1.jsonl" --threads 1 \
        > "${tel_dir}/tel_1.txt"
    "${cli}" run --scenario "${scn}" \
        --telemetry-out "${tel_dir}/t_8.jsonl" --threads 8 \
        > "${tel_dir}/tel_8.txt"
    for variant in tel_1 tel_8; do
        if ! diff -u "${tel_dir}/plain.txt" "${tel_dir}/${variant}.txt"; then
            echo "FAIL: --telemetry-out changed scenario stdout" \
                 "(${variant})" >&2
            exit 1
        fi
    done

    # The windowed JSONL export is Sim-class: per-thread shards merge in
    # shard order, so the dump is byte-identical at any thread count.
    if ! diff -u "${tel_dir}/t_1.jsonl" "${tel_dir}/t_8.jsonl"; then
        echo "FAIL: telemetry JSONL differs between 1 and 8 threads" >&2
        exit 1
    fi
    if ! grep -q '"bolt_telemetry":1' "${tel_dir}/t_1.jsonl"; then
        echo "FAIL: telemetry dump is missing its header line" >&2
        exit 1
    fi

    # The post-run analyzer must render the dump (exit 0) and reject a
    # non-telemetry file with a usage error (exit 2).
    "${cli}" report --telemetry "${tel_dir}/t_1.jsonl" --top 3 \
        > "${tel_dir}/report.txt"
    if ! grep -q "serve.latency_ms" "${tel_dir}/report.txt"; then
        echo "FAIL: report output lost the serve.latency_ms series" >&2
        exit 1
    fi
    rc=0
    "${cli}" report --telemetry "${tel_dir}/plain.txt" \
        >/dev/null 2>&1 || rc=$?
    if [[ "${rc}" != 2 ]]; then
        echo "FAIL: report on a non-telemetry file exited ${rc}," \
             "expected 2" >&2
        exit 1
    fi

    # Failed `expect:` blocks are their own exit code (3) with a
    # file:line diagnostic, distinct from usage errors (2).
    cat > "${tel_dir}/failing.scn" <<'EOF'
scenario: telemetry-gate-failing-expect
seed: 5
stages:
  - stage: serve
    requests: 200
    qps: 2000
expect:
  - metric: serve.completed
    min: 1000000
EOF
    rc=0
    "${cli}" run --scenario "${tel_dir}/failing.scn" \
        >/dev/null 2>"${tel_dir}/expect_err.txt" || rc=$?
    if [[ "${rc}" != 3 ]]; then
        echo "FAIL: failing expect exited ${rc}, expected 3" >&2
        exit 1
    fi
    if ! grep -q "failing.scn:" "${tel_dir}/expect_err.txt" ||
       ! grep -q "expectation failed" "${tel_dir}/expect_err.txt"; then
        echo "FAIL: expect failure diagnostic lost its file:line" >&2
        exit 1
    fi

    # Overhead budget: recording every serve/detector/fault series at
    # saturation load must cost <5% wall-QPS and leave the sim digest
    # untouched (perf_serving --json exits 1 otherwise).
    ./build-release/bench/perf_serving --json \
        > "${tel_dir}/overhead.json"
    echo "-- perf_serving telemetry-overhead probe --"
    cat "${tel_dir}/overhead.json"
    echo "Telemetry gate passed."
fi

if [[ "${mode}" == "--fleet" || "${mode}" == "all" ]]; then
    echo "== Fleet determinism gate =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target bolt_cli
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-release -j "$(nproc)" --target perf_fleet_scaling
    fleet_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir:-}" "${fault_dir:-}" "${serve_dir:-}" "${scn_dir:-}" "${tel_dir:-}" "${fleet_dir:-}"' EXIT
    cli=./build/examples/bolt_cli
    update_goldens=0
    [[ "${2:-}" == "--update" ]] && update_goldens=1
    fleet_flags=(fleet --hosts 800 --tenants 4000 --epochs 5
                 --host-faults 0.02 --seed 2017 --log-level error)

    # The decision plane fixes every churn event sequentially before the
    # per-shard profiling fan-out, so the whole stdout (same shards) is
    # byte-identical at any thread count.
    for threads in 1 8; do
        "${cli}" "${fleet_flags[@]}" --shards 8 --threads "${threads}" \
            > "${fleet_dir}/t_${threads}.txt"
    done
    if ! diff -u "${fleet_dir}/t_1.txt" "${fleet_dir}/t_8.txt"; then
        echo "FAIL: fleet output differs between 1 and 8 threads" >&2
        exit 1
    fi

    # Shards partition work, never outcomes: the run digest at 1 and 16
    # shards must match (only the cross-shard migration statistic may
    # differ, so the comparison is digest lines, not the full stdout).
    "${cli}" "${fleet_flags[@]}" --shards 1 --threads 8 \
        > "${fleet_dir}/s_1.txt"
    "${cli}" "${fleet_flags[@]}" --shards 16 --threads 8 \
        > "${fleet_dir}/s_16.txt"
    if ! diff <(grep "Result digest" "${fleet_dir}/s_1.txt") \
              <(grep "Result digest" "${fleet_dir}/s_16.txt"); then
        echo "FAIL: fleet digest differs between 1 and 16 shards" >&2
        exit 1
    fi

    # Strict flag validation: trailing garbage, out-of-range values and
    # unknown flags must exit 2, never silently run a default.
    for bad in "--hosts 10x" "--shards 99999" "--no-such-flag 1"; do
        rc=0
        # shellcheck disable=SC2086  # word splitting is intentional
        "${cli}" fleet ${bad} >/dev/null 2>&1 || rc=$?
        if [[ "${rc}" != 2 ]]; then
            echo "FAIL: 'fleet ${bad}' exited ${rc}, expected 2" >&2
            exit 1
        fi
    done

    # The 1k -> 128k host scaling sweep must reproduce the committed
    # golden bit-for-bit at both thread counts; the binary itself exits
    # 1 if the sharded run stops reproducing the 1-shard digest.
    if [[ "${update_goldens}" == 1 ]]; then
        ./build-release/bench/perf_fleet_scaling \
            > bench/BENCH_fleet_scaling.golden
    fi
    for threads in 1 8; do
        ./build-release/bench/perf_fleet_scaling --threads "${threads}" \
            > "${fleet_dir}/sweep_${threads}.txt"
        if ! diff -u bench/BENCH_fleet_scaling.golden \
                     "${fleet_dir}/sweep_${threads}.txt"; then
            echo "FAIL: perf_fleet_scaling output diverged from golden at" \
                 "threads=${threads} (regenerate intentionally with" \
                 "--fleet --update)" >&2
            exit 1
        fi
    done
    echo "Fleet gate passed."
fi

if [[ "${mode}" == "--armsrace" || "${mode}" == "all" ]]; then
    echo "== Placement arms-race gate =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target bolt_cli
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-release -j "$(nproc)" --target coloc_arms_race
    ar_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir:-}" "${fault_dir:-}" "${serve_dir:-}" "${scn_dir:-}" "${tel_dir:-}" "${fleet_dir:-}" "${ar_dir:-}"' EXIT
    cli=./build/examples/bolt_cli
    update_goldens=0
    [[ "${2:-}" == "--update" ]] && update_goldens=1
    ar_flags=(arms-race --servers 16 --probes 3 --waves 2 --reps 4
              --util-levels 40,60 --seed 7 --log-level error)

    # Campaign reps fan out on the pool but each writes only its own
    # result slot; the tournament table and digest fold sequentially,
    # so the whole stdout is byte-identical at any thread count. The
    # command also applies the arms-race self-check gates (exit 1 if a
    # defense stops beating least-loaded).
    for threads in 1 8; do
        "${cli}" "${ar_flags[@]}" --threads "${threads}" \
            > "${ar_dir}/t_${threads}.txt"
    done
    if ! diff -u "${ar_dir}/t_1.txt" "${ar_dir}/t_8.txt"; then
        echo "FAIL: arms-race output differs between 1 and 8 threads" >&2
        exit 1
    fi

    # Strict flag validation: trailing garbage, out-of-range values,
    # malformed utilization lists and unknown flags must exit 2.
    for bad in "--servers 10x" "--reps 99999" "--util-levels 40,x" \
               "--util-levels 200" "--no-such-flag 1"; do
        rc=0
        # shellcheck disable=SC2086  # word splitting is intentional
        "${cli}" arms-race ${bad} >/dev/null 2>&1 || rc=$?
        if [[ "${rc}" != 2 ]]; then
            echo "FAIL: 'arms-race ${bad}' exited ${rc}, expected 2" >&2
            exit 1
        fi
    done

    # The full tournament + fleet duel must reproduce the committed
    # golden bit-for-bit at both thread counts; the binary itself exits
    # 1 if a defense gate fails or the 16-shard duel re-run stops
    # reproducing the 1-shard row digests.
    if [[ "${update_goldens}" == 1 ]]; then
        ./build-release/bench/coloc_arms_race \
            > bench/BENCH_coloc_arms_race.golden
    fi
    for threads in 1 8; do
        ./build-release/bench/coloc_arms_race --threads "${threads}" \
            > "${ar_dir}/bench_${threads}.txt"
        if ! diff -u bench/BENCH_coloc_arms_race.golden \
                     "${ar_dir}/bench_${threads}.txt"; then
            echo "FAIL: coloc_arms_race output diverged from golden at" \
                 "threads=${threads} (regenerate intentionally with" \
                 "--armsrace --update)" >&2
            exit 1
        fi
    done
    echo "Arms-race gate passed."
fi

if [[ "${mode}" == "--simd" || "${mode}" == "all" ]]; then
    echo "== SIMD backend equivalence gate =="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-release -j "$(nproc)" \
        --target perf_recommender perf_serving
    cmake -B build-simd -S . -DCMAKE_BUILD_TYPE=Release \
        -DBOLT_SIMD=ON >/dev/null
    cmake --build build-simd -j "$(nproc)"
    echo "-- SIMD build test suite (incl. scalar-vs-AVX2 bit equality) --"
    ctest --test-dir build-simd --output-on-failure -j "$(nproc)" -L tier1
    simd_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir:-}" "${fault_dir:-}" "${serve_dir:-}" "${scn_dir:-}" "${tel_dir:-}" "${simd_dir:-}"' EXIT

    # The recommender query digest must be byte-identical across
    # backends (each run is also gated against the committed golden).
    echo "-- scalar vs SIMD: perf_recommender digest --"
    ./build-release/bench/perf_recommender --reps 1 \
        --json "${simd_dir}/rec_scalar.json" \
        --golden bench/BENCH_recommender.golden >/dev/null
    ./build-simd/bench/perf_recommender --reps 1 \
        --json "${simd_dir}/rec_simd.json" \
        --golden bench/BENCH_recommender.golden >/dev/null
    if ! diff <(grep '"digest' "${simd_dir}/rec_scalar.json") \
              <(grep '"digest' "${simd_dir}/rec_simd.json"); then
        echo "FAIL: perf_recommender digests differ between scalar and" \
             "SIMD builds" >&2
        exit 1
    fi

    # The full serving sweep (Sim-class stdout) must match byte-for-byte.
    echo "-- scalar vs SIMD: perf_serving sweep --"
    ./build-release/bench/perf_serving > "${simd_dir}/sweep_scalar.txt"
    ./build-simd/bench/perf_serving > "${simd_dir}/sweep_simd.txt"
    if ! diff -u "${simd_dir}/sweep_scalar.txt" \
                 "${simd_dir}/sweep_simd.txt"; then
        echo "FAIL: perf_serving sweep differs between scalar and SIMD" \
             "builds" >&2
        exit 1
    fi
    echo "SIMD gate passed."
fi

if [[ "${mode}" == "--bench-only" || "${mode}" == "all" ]]; then
    echo "== Configuring build-release (Release) =="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    echo "== Building recommender benchmark =="
    cmake --build build-release -j "$(nproc)" --target perf_recommender
    echo "== Recommender query-path benchmark (digest-gated) =="
    # Exits non-zero if the query-output digest does not match the
    # committed golden, i.e. if an optimization changed results.
    ./build-release/bench/perf_recommender \
        --json BENCH_recommender.json \
        --golden bench/BENCH_recommender.golden
    echo "== BENCH_recommender.json =="
    cat BENCH_recommender.json
fi

echo "All checks passed."

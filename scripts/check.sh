#!/usr/bin/env bash
# Full verification: build + ctest in the plain configuration, then
# again under ThreadSanitizer (BOLT_SANITIZE=thread) to vet the thread
# pool and the parallel experiment engine. Finally a Release build runs
# the recommender query-path benchmark, which fails if its output
# digest diverges from the committed golden (bench/BENCH_recommender.golden)
# and writes throughput/latency numbers to BENCH_recommender.json.
#
# Usage: scripts/check.sh [--plain-only|--tsan-only|--bench-only]
set -euo pipefail

cd "$(dirname "$0")/.."

run_config() {
    local dir="$1"
    shift
    echo "== Configuring ${dir} ($*) =="
    cmake -B "${dir}" -S . "$@"
    echo "== Building ${dir} =="
    cmake --build "${dir}" -j "$(nproc)"
    echo "== Testing ${dir} =="
    ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

mode="${1:-all}"

if [[ "${mode}" == "--plain-only" || "${mode}" == "all" ]]; then
    run_config build
fi

if [[ "${mode}" == "--tsan-only" || "${mode}" == "all" ]]; then
    # TSan slows execution ~5-15x; the suite still finishes in minutes.
    run_config build-tsan -DBOLT_SANITIZE=thread
fi

if [[ "${mode}" == "--bench-only" || "${mode}" == "all" ]]; then
    echo "== Configuring build-release (Release) =="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    echo "== Building recommender benchmark =="
    cmake --build build-release -j "$(nproc)" --target perf_recommender
    echo "== Recommender query-path benchmark (digest-gated) =="
    # Exits non-zero if the query-output digest does not match the
    # committed golden, i.e. if an optimization changed results.
    ./build-release/bench/perf_recommender \
        --json BENCH_recommender.json \
        --golden bench/BENCH_recommender.golden
    echo "== BENCH_recommender.json =="
    cat BENCH_recommender.json
fi

echo "All checks passed."
